package service

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"resemble/internal/faults"
	"resemble/internal/prefetch"
	"resemble/internal/trace"
)

// Chaos injects faults into the serving path for the chaos/soak
// harness (cmd/resembled -soak and the service chaos tests). Each
// field targets one dependency the resilience layer is supposed to
// contain:
//
//   - StuckArm exercises the accuracy-masking → circuit-breaker
//     pipeline: the named ensemble arm is wrapped in a faults.Stuck
//     prefetcher, masking flags it within a run, and consecutive
//     masked runs trip its breaker;
//   - CorruptTraces exercises input validation: each simulated trace
//     has this fraction of records corrupted before the run;
//   - CheckpointFailures exercises the retrying atomic writer: the
//     first N checkpoint write attempts fail mid-stream through a
//     faults.FailingWriter;
//   - SlowHandler exercises deadline propagation and load shedding:
//     every request stalls this long before simulating, backing the
//     queue up under load;
//   - PanicEvery exercises the supervision tree: every Nth simulation
//     panics inside the worker, which must answer 500, restart with
//     backoff, and keep serving.
//
// The zero value injects nothing. A Chaos value is safe for
// concurrent use by all workers.
type Chaos struct {
	// StuckArm names the ensemble arm to degrade ("" = none).
	StuckArm string
	// FaultSeed drives the injected faults' randomness.
	FaultSeed int64
	// FaultStart delays the stuck fault this many accesses into each
	// run (0 = immediately).
	FaultStart int
	// CorruptTraces is the per-record corruption rate in [0,1].
	CorruptTraces float64
	// CheckpointFailures fails this many checkpoint write attempts
	// before letting writes through.
	CheckpointFailures int32
	// SlowHandler stalls every request this long before simulating.
	SlowHandler time.Duration
	// PanicEvery panics every Nth simulation (0 = never).
	PanicEvery int

	ckpFails atomic.Int32
	runs     atomic.Uint64
	stopped  atomic.Bool
}

// Stop ends the chaos window: subsequent requests and checkpoint
// writes run fault-free, letting the soak harness assert that the
// service heals (breakers close, readiness returns, retries stop).
func (c *Chaos) Stop() {
	if c != nil {
		c.stopped.Store(true)
	}
}

// active reports whether injection is still on.
func (c *Chaos) active() bool { return c != nil && !c.stopped.Load() }

// wrapArm degrades the named arm; other arms pass through.
func (c *Chaos) wrapArm(name string, p prefetch.Prefetcher) prefetch.Prefetcher {
	if !c.active() || c.StuckArm != name {
		return p
	}
	return faults.Wrap(p, faults.Config{
		Mode:  faults.Stuck,
		Seed:  c.FaultSeed,
		Start: c.FaultStart,
	})
}

// wrapTrace corrupts a fraction of the trace records.
func (c *Chaos) wrapTrace(tr *trace.Trace) *trace.Trace {
	if !c.active() || c.CorruptTraces <= 0 {
		return tr
	}
	return faults.CorruptRecords(tr, c.CorruptTraces, c.FaultSeed)
}

// wrapCheckpointWriter fails the first CheckpointFailures write
// attempts mid-stream; each failed attempt is torn, never atomic —
// exactly the failure the temp+rename+retry pipeline must absorb.
func (c *Chaos) wrapCheckpointWriter(w io.Writer) io.Writer {
	if !c.active() || c.ckpFails.Add(1) > c.CheckpointFailures {
		return w
	}
	return &faults.FailingWriter{W: w, FailAfter: 4}
}

// shouldPanic reports whether this simulation is the unlucky Nth.
func (c *Chaos) shouldPanic() bool {
	if !c.active() || c.PanicEvery <= 0 {
		return false
	}
	return c.runs.Add(1)%uint64(c.PanicEvery) == 0
}

// slow stalls the handler, giving up early if the deadline passes.
func (c *Chaos) slow(ctx context.Context) {
	if !c.active() || c.SlowHandler <= 0 {
		return
	}
	t := time.NewTimer(c.SlowHandler)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
