package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"resemble/internal/checkpoint"
	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// startService builds and starts a service, tied to the test's
// lifetime. mutate adjusts the config before New.
func startService(t *testing.T, mutate func(*Config)) *Service {
	t.Helper()
	cfg := Config{
		Workers:         2,
		QueueDepth:      8,
		RequestTimeout:  30 * time.Second,
		DrainTimeout:    30 * time.Second,
		DefaultAccesses: 2000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// post fires one request at the running service and decodes the reply.
func post(t *testing.T, s *Service, req Request) (int, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

func getStatus(t *testing.T, s *Service, path string) int {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServiceHappyPathMatchesBatch pins the acceptance criterion: a
// zero-fault service soak produces telemetry window output
// byte-identical to the equivalent batch sim.Runner invocation over
// the same (workload, controller) sequence.
func TestServiceHappyPathMatchesBatch(t *testing.T) {
	reqs := []Request{
		{Workload: "433.milc", Controller: "resemble-t", Accesses: 3000},
		{Workload: "433.milc", Controller: "bo", Accesses: 3000},
		{Workload: "471.omnetpp", Controller: "resemble-t", Accesses: 3000, Seed: 7},
		{Workload: "433.milc", Controller: "none", Accesses: 3000},
		{Workload: "471.omnetpp", Controller: "sbp-e", Accesses: 3000},
	}

	svcTel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = svcTel })
	for i, req := range reqs {
		status, resp := post(t, s, req)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, status, resp.Error)
		}
		if req.Controller != "none" && resp.IPC <= 0 {
			t.Fatalf("request %d: non-positive IPC %v", i, resp.IPC)
		}
		// In-run masking may quarantine a genuinely weak arm on a short
		// trace (that is adaptation, not a fault), but no breaker may
		// open on a zero-fault soak short of its consecutive-failure
		// threshold — exclusions would diverge from the batch runner.
		if len(resp.ExcludedArms) != 0 {
			t.Fatalf("request %d: zero-fault run excluded arms %v", i, resp.ExcludedArms)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Batch equivalent: the same runs, serially, through one runner
	// instrumented with one collector. A second (never-started) service
	// with identical config supplies byte-identical source construction.
	batchTel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{DefaultAccesses: 2000, Telemetry: batchTel})
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewRunner(sim.DefaultConfig(), sim.WithTelemetry(batchTel))
	for i, req := range reqs {
		w, err := trace.Lookup(req.Workload)
		if err != nil {
			t.Fatal(err)
		}
		tr := ref.cfg.Traces.Get(w, req.Accesses, w.Seed+req.Seed)
		src, _, _, _, err := ref.buildSource(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Run(tr, src); err != nil {
			t.Fatalf("batch run %d: %v", i, err)
		}
	}

	got, err := json.Marshal(svcTel.Windows())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(batchTel.Windows())
	if err != nil {
		t.Fatal(err)
	}
	if len(svcTel.Windows()) == 0 {
		t.Fatal("service produced no telemetry windows")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service windows diverge from batch: %d vs %d windows",
			len(svcTel.Windows()), len(batchTel.Windows()))
	}
}

// TestServiceConcurrentCommitsInOrder: concurrent submissions through
// multiple workers still merge telemetry children in admission order —
// the window stream lists each admitted run's windows contiguously.
func TestServiceConcurrentCommitsInOrder(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) {
		c.Telemetry = tel
		c.Workers = 4
	})
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			status, resp := func() (int, Response) {
				body, _ := json.Marshal(Request{Workload: "433.milc", Controller: "bo", Accesses: 2500})
				r, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return 0, Response{}
				}
				defer r.Body.Close()
				var out Response
				_ = json.NewDecoder(r.Body).Decode(&out)
				return r.StatusCode, out
			}()
			if status != http.StatusOK {
				errs <- fmt.Errorf("status %d (%s)", status, resp.Error)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// All runs identical → every run's windows must appear as complete
	// consecutive blocks (window indices restart at each run boundary).
	wins := tel.Windows()
	if len(wins) == 0 || len(wins)%n != 0 {
		t.Fatalf("window count %d not a multiple of %d runs", len(wins), n)
	}
	per := len(wins) / n
	for i, w := range wins {
		if w.Window != i%per {
			t.Fatalf("window %d: index %d breaks the per-run sequence (want %d)", i, w.Window, i%per)
		}
	}
}

func TestServiceValidation(t *testing.T) {
	s := startService(t, nil)
	for _, tc := range []struct {
		name string
		req  Request
	}{
		{"unknown workload", Request{Workload: "no-such-workload", Controller: "bo"}},
		{"unknown controller", Request{Workload: "433.milc", Controller: "magic"}},
		{"missing fields", Request{}},
		{"oversized trace", Request{Workload: "433.milc", Controller: "bo", Accesses: 1 << 30}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, resp := post(t, s, tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, resp.Error)
			}
			if resp.Error == "" {
				t.Fatal("400 without an error message")
			}
		})
	}
}

// TestServiceDrain: drain is idempotent, flips state, rejects new work
// with 503 + Retry-After, and writes a final valid checkpoint.
func TestServiceDrain(t *testing.T) {
	ckp := t.TempDir() + "/service.ckpt"
	s := startService(t, func(c *Config) { c.CheckpointPath = ckp })
	if status, _ := post(t, s, Request{Workload: "433.milc", Controller: "bo", Accesses: 2000}); status != http.StatusOK {
		t.Fatalf("warmup request: status %d", status)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second drain not idempotent: %v", err)
	}
	if s.State() != Stopped {
		t.Fatalf("state = %v, want stopped", s.State())
	}

	f, err := checkpoint.ReadFile(ckp)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if !f.Has("service") {
		t.Fatal("final checkpoint missing the service section")
	}

	// A fresh service resuming from the final checkpoint carries the
	// lifetime counters forward.
	s2, err := New(Config{CheckpointPath: ckp, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Completed; got != 1 {
		t.Fatalf("resumed completed = %d, want 1", got)
	}
}

// TestServiceProbes: healthz stays alive through draining; readyz
// flips to 503 once draining starts.
func TestServiceProbes(t *testing.T) {
	s := startService(t, nil)
	if got := getStatus(t, s, "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := getStatus(t, s, "/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d", got)
	}
	if got := getStatus(t, s, "/metrics"); got != http.StatusOK {
		t.Fatalf("metrics = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The HTTP server shuts down with the drain, so probe the state
	// machine directly post-drain.
	if s.State() != Stopped {
		t.Fatalf("state after drain = %v", s.State())
	}
}

// getReadyz fetches /readyz and decodes status, Retry-After and the
// machine-readable reason.
func getReadyz(t *testing.T, addr string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Reason string `json:"reason"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), body.Reason
}

// TestReadyzReasons pins the readiness contract the cluster front door
// branches on: a draining service reports reason "draining", a
// saturated one "overloaded", and both 503s carry Retry-After.
func TestReadyzReasons(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		s := startService(t, nil)
		// Flip the lifecycle without tearing down the HTTP server so the
		// probe can still be scraped mid-drain.
		s.state.Store(int32(Draining))
		status, retryAfter, reason := getReadyz(t, s.Addr())
		if status != http.StatusServiceUnavailable || reason != ReadyReasonDraining {
			t.Fatalf("readyz = %d reason %q, want 503 %q", status, reason, ReadyReasonDraining)
		}
		if retryAfter == "" {
			t.Fatal("draining 503 missing Retry-After")
		}
		s.state.Store(int32(Ready)) // let Close drain normally
	})
	t.Run("overloaded", func(t *testing.T) {
		s := startService(t, func(c *Config) {
			c.Workers = 1
			c.QueueDepth = 1
			c.RequestTimeout = 2 * time.Second
			// The stall is context-bounded, so the worker frees itself at
			// the request deadline and the drain stays fast.
			c.Chaos = &Chaos{SlowHandler: time.Hour}
		})
		// One request occupies the worker, the next fills the 1-deep
		// queue; readyz must then report overloaded.
		for i := 0; i < 3; i++ {
			go func() {
				body, _ := json.Marshal(Request{Workload: "433.milc", Controller: "none", Accesses: 1000})
				resp, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			status, retryAfter, reason := getReadyz(t, s.Addr())
			if status == http.StatusServiceUnavailable {
				if reason != ReadyReasonOverloaded {
					t.Fatalf("saturated readyz reason = %q, want %q", reason, ReadyReasonOverloaded)
				}
				if retryAfter == "" {
					t.Fatal("overloaded 503 missing Retry-After")
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("readyz never reported overloaded under saturation")
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestReturnWindows: a request with ReturnWindows gets the run's
// committed window stream in the response — byte-identical to the
// windows the service's own collector merged for that run — and a
// request without it gets none.
func TestReturnWindows(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	status, plain := post(t, s, Request{Workload: "433.milc", Controller: "bo", Accesses: 3000})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, plain.Error)
	}
	if len(plain.Windows) != 0 {
		t.Fatalf("response without ReturnWindows carried %d windows", len(plain.Windows))
	}
	status, out := post(t, s, Request{Workload: "433.milc", Controller: "bo", Accesses: 3000, ReturnWindows: true})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, out.Error)
	}
	if len(out.Windows) == 0 {
		t.Fatal("ReturnWindows response carried no windows")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The second run's committed windows are the collector's tail.
	all := tel.Windows()
	if len(all) != 2*len(out.Windows) {
		t.Fatalf("collector windows %d, want %d (two identical runs)", len(all), 2*len(out.Windows))
	}
	got, _ := json.Marshal(out.Windows)
	want, _ := json.Marshal(all[len(all)-len(out.Windows):])
	if !bytes.Equal(got, want) {
		t.Fatal("shipped windows diverge from the committed stream")
	}
}

// TestAbortSeversHTTP: Abort refuses new connections immediately (the
// SIGKILL stand-in for the cluster chaos harness) while Close still
// reaps the engine cleanly afterwards.
func TestAbortSeversHTTP(t *testing.T) {
	s := startService(t, nil)
	if got := getStatus(t, s, "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before abort = %d", got)
	}
	s.Abort()
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("aborted service still answering HTTP")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after abort: %v", err)
	}
	if s.State() != Stopped {
		t.Fatalf("state = %v, want stopped", s.State())
	}
}

// TestServiceRejectsAfterDrainStarts: a request racing the drain gets
// a clean 503, never a hang.
func TestServiceRejectsAfterDrainStarts(t *testing.T) {
	s := startService(t, nil)
	resp, err := http.Post("http://"+s.Addr()+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain = %d, want 202", resp.StatusCode)
	}
	<-s.Drained()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after drained: %v", err)
	}
	// Admission after the drain is a clean rejection, not a hang.
	if _, err := s.admit(context.Background(), Request{Workload: "433.milc", Controller: "bo"}, telemetry.SpanRef{}); err == nil {
		t.Fatal("admit after drain succeeded")
	}
	if got := s.Stats().Rejected; got == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

// TestServiceNoGoroutineLeak: a start/serve/drain cycle returns the
// process to its baseline goroutine count.
func TestServiceNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := startService(t, nil)
	if status, _ := post(t, s, Request{Workload: "433.milc", Controller: "none", Accesses: 2000}); status != http.StatusOK {
		t.Fatalf("request: status %d", status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// http client keep-alives and runtime bookkeeping settle
		// asynchronously; poll with a small allowance.
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after drain\n%s",
				runtime.NumGoroutine(), before, truncateStack(string(buf[:n])))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func truncateStack(s string) string {
	if parts := strings.SplitAfter(s, "\n\n"); len(parts) > 12 {
		return strings.Join(parts[:12], "") + "... (truncated)"
	}
	return s
}
