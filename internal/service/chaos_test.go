package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"resemble/internal/checkpoint"
	"resemble/internal/core"
	"resemble/internal/resilience"
)

// fastMask shrinks the masking operating point so a broken arm trips
// within a few thousand accesses, and makes in-run masking sticky
// (reprobe beyond any test trace) so the end-of-run breaker report is
// deterministic.
func fastMask(req Request) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = 1 + req.Seed
	cfg.Batch = 64
	cfg.MaskFloor = 0.2
	cfg.MaskWindow = 512
	cfg.MaskBadWindows = 2
	cfg.MaskMinSamples = 8
	cfg.MaskReprobe = 1 << 20
	return cfg
}

// TestChaosStuckArmTripsBreaker drives the full degradation pipeline:
// a stuck BO arm is masked by the controller within each run,
// consecutive masked runs trip BO's circuit breaker, solo BO requests
// are refused with 503 + Retry-After, and ensembles keep serving with
// the arm excluded.
func TestChaosStuckArmTripsBreaker(t *testing.T) {
	chaos := &Chaos{StuckArm: "bo", FaultSeed: 97}
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.Workers = 1
		c.ControllerConfig = fastMask
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute}
	})

	run := Request{Workload: "433.lbm", Controller: "resemble-t", Accesses: 8000}
	var lastMasked []string
	for i := 0; i < 2; i++ {
		status, resp := post(t, s, run)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d (%s)", i, status, resp.Error)
		}
		lastMasked = resp.MaskedArms
	}
	if !contains(lastMasked, "bo") {
		t.Fatalf("stuck arm not masked by run end (masked %v)", lastMasked)
	}
	if st := s.Breaker("bo").State(); st != resilience.Open {
		t.Fatalf("bo breaker = %v after %d masked runs, want open", st, 2)
	}

	// Solo requests for the broken arm are refused, not simulated.
	body, _ := json.Marshal(Request{Workload: "433.lbm", Controller: "bo", Accesses: 2000})
	resp, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solo broken arm: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Ensembles degrade gracefully: the broken arm is excluded. (At the
	// aggressive fastMask operating point a genuinely weak arm may trip
	// too — only the stuck arm's exclusion is the contract here.)
	status, out := post(t, s, run)
	if status != http.StatusOK {
		t.Fatalf("degraded ensemble: status %d (%s)", status, out.Error)
	}
	if !contains(out.ExcludedArms, "bo") {
		t.Fatalf("excluded arms = %v, want bo excluded", out.ExcludedArms)
	}
	if len(out.ExcludedArms) == len(ArmNames()) {
		t.Fatal("every arm excluded; the ensemble should have been refused instead")
	}
	if s.Breaker("bo").Trips() == 0 {
		t.Fatal("trip counter not incremented")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestChaosBreakerRecovers: once the chaos window ends and the
// breaker's open interval elapses, a half-open probe run readmits the
// arm and a clean result closes the breaker.
func TestChaosBreakerRecovers(t *testing.T) {
	chaos := &Chaos{StuckArm: "bo", FaultSeed: 97}
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.Workers = 1
		c.ControllerConfig = fastMask
		c.Breaker = resilience.BreakerConfig{
			FailureThreshold: 2,
			OpenFor:          10 * time.Millisecond,
			HalfOpenProbes:   1,
		}
	})
	run := Request{Workload: "433.lbm", Controller: "resemble-t", Accesses: 8000}
	for i := 0; i < 2; i++ {
		if status, resp := post(t, s, run); status != http.StatusOK {
			t.Fatalf("run %d: status %d (%s)", i, status, resp.Error)
		}
	}
	if st := s.Breaker("bo").State(); st != resilience.Open {
		t.Fatalf("bo breaker = %v, want open", st)
	}

	chaos.Stop()
	time.Sleep(20 * time.Millisecond) // past OpenFor: next Allow half-opens

	status, out := post(t, s, run)
	if status != http.StatusOK {
		t.Fatalf("probe run: status %d (%s)", status, out.Error)
	}
	if len(out.ExcludedArms) != 0 {
		t.Fatalf("probe run excluded %v, want the arm readmitted", out.ExcludedArms)
	}
	for _, arm := range out.MaskedArms {
		if arm == "bo" {
			t.Fatal("recovered arm still masked at run end")
		}
	}
	if st := s.Breaker("bo").State(); st != resilience.Closed {
		t.Fatalf("bo breaker = %v after clean probe, want closed", st)
	}
}

// TestChaosCheckpointWriterRetried: injected checkpoint write failures
// are absorbed by the retrying atomic writer — the retry counters move
// and the final checkpoint is valid.
func TestChaosCheckpointWriterRetried(t *testing.T) {
	ckp := t.TempDir() + "/service.ckpt"
	chaos := &Chaos{CheckpointFailures: 2}
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.CheckpointPath = ckp
	})
	if status, resp := post(t, s, Request{Workload: "433.milc", Controller: "none", Accesses: 2000}); status != http.StatusOK {
		t.Fatalf("request: status %d (%s)", status, resp.Error)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain with failing checkpoint writer: %v", err)
	}
	st := s.Stats()
	if st.CkpRetries < 2 {
		t.Fatalf("checkpoint retries = %d, want >= 2 (two injected failures)", st.CkpRetries)
	}
	if st.CkpWrites == 0 {
		t.Fatal("no checkpoint write succeeded")
	}
	f, err := checkpoint.ReadFile(ckp)
	if err != nil {
		t.Fatalf("checkpoint after injected failures: %v", err)
	}
	if !f.Has("service") {
		t.Fatal("checkpoint missing service section")
	}
}

// TestChaosPanicSupervision: an injected worker panic is answered as
// 500, the worker restarts under supervision, and the service keeps
// serving later requests.
func TestChaosPanicSupervision(t *testing.T) {
	chaos := &Chaos{PanicEvery: 2} // panics the 2nd, 4th, ... simulation
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.Workers = 1
	})
	req := Request{Workload: "433.milc", Controller: "none", Accesses: 2000}
	if status, resp := post(t, s, req); status != http.StatusOK {
		t.Fatalf("first request: status %d (%s)", status, resp.Error)
	}
	status, resp := post(t, s, req)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", status)
	}
	if resp.Error == "" {
		t.Fatal("500 without an error message")
	}
	if status, resp := post(t, s, req); status != http.StatusOK {
		t.Fatalf("request after restart: status %d (%s)", status, resp.Error)
	}
	st := s.Stats()
	if st.Panics != 1 || st.Restarts != 1 {
		t.Fatalf("panics=%d restarts=%d, want 1/1", st.Panics, st.Restarts)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain after supervised restart: %v", err)
	}
}

// TestChaosSlowHandlerShedsAndReadyzFlips: with one worker stalled by
// the slow-handler fault and a one-deep queue, concurrent arrivals are
// shed with 503 + Retry-After, /readyz flips to 503 while saturated,
// and both recover when the burst passes.
func TestChaosSlowHandlerShedsAndReadyzFlips(t *testing.T) {
	chaos := &Chaos{SlowHandler: 300 * time.Millisecond}
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.Workers = 1
		c.QueueDepth = 1
	})

	const burst = 6
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(Request{Workload: "433.milc", Controller: "none", Accesses: 2000})
			resp, err := http.Post("http://"+s.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}

	// While the burst saturates the queue, readiness must flip.
	sawUnready := false
	for j := 0; j < 50 && !sawUnready; j++ {
		if getStatus(t, s, "/readyz") == http.StatusServiceUnavailable {
			sawUnready = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()

	var ok, shed int
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if o.retryAfter == "" {
				t.Fatal("shed response missing Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d in burst", o.status)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst outcomes ok=%d shed=%d, want both nonzero", ok, shed)
	}
	if !sawUnready {
		t.Fatal("readyz never flipped to 503 under saturation")
	}
	if got := s.Stats().Shed; got == 0 {
		t.Fatal("shed counter not incremented")
	}

	// The burst passes; readiness recovers.
	chaos.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for getStatus(t, s, "/readyz") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("readyz did not recover after the burst")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRequestDeadlinePropagates: a request that cannot finish inside
// the request timeout is interrupted in the simulator (not abandoned)
// and answered with 504.
func TestRequestDeadlinePropagates(t *testing.T) {
	// The slow handler holds the run far past the request timeout so
	// the deadline wins even on a loaded machine (a tight margin here
	// flakes under a parallel full-suite run).
	chaos := &Chaos{SlowHandler: 400 * time.Millisecond}
	s := startService(t, func(c *Config) {
		c.Chaos = chaos
		c.Workers = 1
		c.RequestTimeout = 50 * time.Millisecond
	})
	status, resp := post(t, s, Request{Workload: "433.milc", Controller: "bo", Accesses: 20000})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, resp.Error)
	}
	if got := s.Stats().TimedOut; got != 1 {
		t.Fatalf("timed out = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain after timeout: %v", err)
	}
}

// TestChaosCorruptTracesStillServes: corrupted trace records must not
// crash the service — the simulation completes (the trace layer is
// total over arbitrary records) and the response is well-formed.
func TestChaosCorruptTracesStillServes(t *testing.T) {
	chaos := &Chaos{CorruptTraces: 0.05, FaultSeed: 11}
	s := startService(t, func(c *Config) { c.Chaos = chaos })
	status, resp := post(t, s, Request{Workload: "433.milc", Controller: "bo", Accesses: 3000})
	if status != http.StatusOK {
		t.Fatalf("corrupted-trace run: status %d (%s)", status, resp.Error)
	}
	if resp.Instructions == 0 {
		t.Fatal("corrupted-trace run produced no instructions")
	}
}
