package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"resemble/internal/telemetry"
)

// postWithTraceParent fires one request carrying an inbound trace
// context header, as the cluster front door does.
func postWithTraceParent(t *testing.T, s *Service, req Request, ref telemetry.SpanRef) (int, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if v := telemetry.FormatSpanRef(ref); v != "" {
		hreq.Header.Set(telemetry.TraceParentHeader, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// TestInboundTraceContextShipsSpans: a request carrying a trace-parent
// header and return_spans gets its whole span tree back, parented
// under the inbound ref — the backend half of cross-process stitching.
func TestInboundTraceContextShipsSpans(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	ref := telemetry.SpanRef{ID: 0xabcdef0123456789, Track: "freq:0007"}
	status, out := postWithTraceParent(t, s,
		Request{Workload: "433.milc", Controller: "resemble-t", ReturnSpans: true}, ref)
	if status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}
	if len(out.Spans) == 0 {
		t.Fatal("no spans shipped")
	}
	byName := map[string]telemetry.SpanRecord{}
	ids := map[telemetry.SpanID]bool{ref.ID: true}
	for _, sp := range out.Spans {
		byName[sp.Name] = sp
		ids[sp.ID] = true
	}
	for _, want := range []string{"request", "admission", "worker.serve", "sim.run"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("shipped spans missing %q", want)
		}
	}
	reqSpan := byName["request"]
	if reqSpan.Parent != ref.ID {
		t.Errorf("request span parent %016x, want the inbound ref %016x",
			uint64(reqSpan.Parent), uint64(ref.ID))
	}
	if reqSpan.Track != ref.Track {
		t.Errorf("request span track %q, want the inbound track %q", reqSpan.Track, ref.Track)
	}
	for _, sp := range out.Spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %q has dangling parent %016x", sp.Name, uint64(sp.Parent))
		}
	}

	// Without return_spans the response stays span-free (and the
	// header alone must not bloat it).
	if status, out := postWithTraceParent(t, s,
		Request{Workload: "433.milc", Controller: "resemble-t"}, ref); status != http.StatusOK {
		t.Fatalf("second run: status %d", status)
	} else if len(out.Spans) != 0 {
		t.Fatalf("spans shipped without return_spans: %d", len(out.Spans))
	}
}

// TestMetricsHistoryEndpoint: the sampler fills the ring and
// /metrics/history serves it with its retention parameters.
func TestMetricsHistoryEndpoint(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) {
		c.Telemetry = tel
		c.HistoryEvery = 10 * time.Millisecond
		c.HistorySamples = 64
	})
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "bo"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}
	deadline := time.Now().Add(5 * time.Second)
	var hist struct {
		PeriodMS int64                     `json:"period_ms"`
		Capacity int                       `json:"capacity"`
		Count    int                       `json:"count"`
		Samples  []telemetry.HistorySample `json:"samples"`
	}
	for {
		resp, err := http.Get("http://" + s.Addr() + "/metrics/history")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&hist)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hist.Count >= 3 && hist.Samples[hist.Count-1].Counters["service.requests.admitted"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never filled: %+v", hist)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if hist.PeriodMS != 10 || hist.Capacity != 64 {
		t.Fatalf("period_ms=%d capacity=%d, want 10/64", hist.PeriodMS, hist.Capacity)
	}
	last := hist.Samples[hist.Count-1]
	if last.Gauges["service.queue.capacity"] != 8 {
		t.Errorf("sample gauges missing queue capacity: %v", last.Gauges)
	}
	if last.TMS < hist.Samples[0].TMS {
		t.Error("samples not oldest-first")
	}
}

// TestIncidentEndpoints: manual capture produces a bundle carrying the
// ring, spans and history; /debug/incidents and /debug/flightrec agree.
func TestIncidentEndpoints(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) {
		c.Telemetry = tel
		c.HistoryEvery = 10 * time.Millisecond
	})
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "bo"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}
	time.Sleep(30 * time.Millisecond) // a couple of history ticks

	resp, err := http.Post("http://"+s.Addr()+"/debug/incidents/capture", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var inc telemetry.Incident
	if err := json.NewDecoder(resp.Body).Decode(&inc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture: status %d", resp.StatusCode)
	}
	if inc.Trigger != "manual: POST /debug/incidents/capture" || inc.Seq == 0 {
		t.Fatalf("capture incident = %+v", inc)
	}
	if inc.Process != "resembled "+s.Addr() {
		t.Errorf("incident process %q, want %q", inc.Process, "resembled "+s.Addr())
	}
	if len(inc.Spans) == 0 {
		t.Error("incident carries no spans")
	}
	if len(inc.History) == 0 {
		t.Error("incident carries no metrics history")
	}

	var list struct {
		Count     int                  `json:"count"`
		Incidents []telemetry.Incident `json:"incidents"`
	}
	resp, err = http.Get("http://" + s.Addr() + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Incidents[0].Seq != inc.Seq {
		t.Fatalf("incident list = %+v, want the captured bundle", list)
	}

	var snap telemetry.RecorderSnapshot
	resp, err = http.Get("http://" + s.Addr() + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Process != inc.Process || len(snap.History) == 0 {
		t.Fatalf("flightrec snapshot = %+v", snap)
	}
	// Snapshot is non-mutating: no new incident appeared.
	resp, _ = http.Get("http://" + s.Addr() + "/debug/incidents")
	_ = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list.Count != 1 {
		t.Fatalf("flightrec snapshot minted an incident: count %d", list.Count)
	}
}

// TestIncidentEndpointsDisabledWithoutTelemetry: with no collector the
// recorder endpoints answer cleanly instead of 500ing.
func TestIncidentEndpointsDisabledWithoutTelemetry(t *testing.T) {
	s := startService(t, nil)
	resp, err := http.Get("http://" + s.Addr() + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/incidents without telemetry: %d", resp.StatusCode)
	}
	resp, err = http.Post("http://"+s.Addr()+"/debug/incidents/capture", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("capture without telemetry: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get("http://" + s.Addr() + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/history without telemetry: %d", resp.StatusCode)
	}
}
