package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Run-checkpoint naming in the artifact store.
//
// A run is identified by the hash of its normalized request — every
// field that shapes the simulation's byte stream (workload,
// controller, accesses, seed, fixed_frac). Checkpoints land in the
// store tagged by (run key, access cursor) plus a "latest" alias the
// failover path resolves without knowing cursors:
//
//	ckp/<runkey>/<cursor %012d>
//	ckp/<runkey>/latest
//
// The run key also travels inside each checkpoint as the
// sim.WithCheckpointScope value, so a snapshot can never silently
// resume a different run that happens to share a trace.

// RunKey derives the run-identity hash of a normalized request
// (Accesses must already be resolved to a concrete count — the
// service normalizes at admission; a coordinator that does not know
// the backend default must skip resume for Accesses == 0).
func RunKey(req Request) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("run|%s|%s|%d|%d|%d",
		req.Workload, req.Controller, req.Accesses, req.Seed, req.FixedFrac)))
	return hex.EncodeToString(h[:])
}

// CheckpointTag names one run checkpoint at an access cursor.
func CheckpointTag(key string, cursor int) string {
	return fmt.Sprintf("ckp/%s/%012d", key, cursor)
}

// CheckpointLatestTag names the newest checkpoint of a run; the front
// door resolves it to pick the resume point after a backend loss.
func CheckpointLatestTag(key string) string {
	return "ckp/" + key + "/latest"
}

// CheckpointTagPrefix is the prefix of every checkpoint tag of a run —
// untagged in one sweep when the run completes.
func CheckpointTagPrefix(key string) string {
	return "ckp/" + key + "/"
}
