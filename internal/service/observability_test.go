package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"resemble/internal/telemetry"
)

// TestMetricsExposition: /metrics serves valid OpenMetrics text with
// the service's counters, gauges, per-arm breaker families and
// runtime health gauges, under the declared Content-Type.
func TestMetricsExposition(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "resemble-t"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.PromContentType)
	}
	samples, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics fails the exposition grammar: %v", err)
	}

	byName := map[string]float64{}
	arms := map[string]bool{}
	for _, smp := range samples {
		byName[smp.Name] = smp.Value
		if smp.Name == "service_breaker_state" {
			arms[smp.Labels["arm"]] = true
		}
	}
	if byName["service_requests_admitted_total"] < 1 {
		t.Errorf("admitted counter = %v, want >= 1", byName["service_requests_admitted_total"])
	}
	if byName["service_requests_completed_total"] < 1 {
		t.Errorf("completed counter = %v, want >= 1", byName["service_requests_completed_total"])
	}
	if byName["service_ready"] != 1 {
		t.Errorf("service_ready = %v, want 1 on an idle ready service", byName["service_ready"])
	}
	if byName["runtime_goroutines"] < 1 {
		t.Errorf("runtime_goroutines missing from exposition")
	}
	if byName["process_uptime_seconds"] <= 0 {
		t.Errorf("process_uptime_seconds = %v, want > 0", byName["process_uptime_seconds"])
	}
	if !arms["bo"] || !arms["spp"] {
		t.Errorf("per-arm breaker families missing arms: got %v", arms)
	}
	if _, ok := byName["service_queue_capacity"]; !ok {
		t.Error("queue capacity gauge missing")
	}
}

// TestMetricsJSONView: the JSON dump moved to /metrics.json and still
// carries the registry snapshot plus service counters.
func TestMetricsJSONView(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	resp, err := http.Get("http://" + s.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Service  *Stats                      `json:"service"`
		Registry *telemetry.RegistrySnapshot `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if out.Service == nil {
		t.Error("/metrics.json missing service counters")
	}
	if out.Registry == nil {
		t.Error("/metrics.json missing registry snapshot")
	}
}

// TestExplainEndpoint: with explain sampling on, /v1/explain returns
// the sampled decision records and every record's chosen arm is a
// valid arm of the run's controller.
func TestExplainEndpoint(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{ExplainSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "resemble-t"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}

	resp, err := http.Get("http://" + s.Addr() + "/v1/explain?n=25")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		SampleRate int                  `json:"sample_rate"`
		Count      int                  `json:"count"`
		Decisions  []telemetry.Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.SampleRate != 1 {
		t.Errorf("sample_rate = %d, want 1", out.SampleRate)
	}
	if out.Count == 0 || len(out.Decisions) == 0 {
		t.Fatal("no decisions surfaced after an RL run with sampling on")
	}
	if out.Count > 25 {
		t.Errorf("count %d exceeds requested bound 25", out.Count)
	}
	for _, d := range out.Decisions {
		if d.Action < 0 || d.Action >= len(d.Q) {
			t.Errorf("decision %d: action %d outside its Q vector (%d)", d.Seq, d.Action, len(d.Q))
		}
		if !d.Resolved {
			t.Errorf("decision %d: unresolved record surfaced", d.Seq)
		}
	}

	// Bad n values are rejected, not clamped silently.
	if code := getStatus(t, s, "/v1/explain?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
}

// TestExplainEndpointDisabled: without telemetry the endpoint answers
// an empty, well-formed payload instead of erroring.
func TestExplainEndpointDisabled(t *testing.T) {
	s := startService(t, nil)
	resp, err := http.Get("http://" + s.Addr() + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Count     int                  `json:"count"`
		Decisions []telemetry.Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 0 || out.Decisions == nil {
		t.Errorf("disabled explain: count=%d decisions=%v, want 0 and empty array", out.Count, out.Decisions)
	}
}

// TestMetricsWithoutTelemetry: /metrics works with no collector —
// service counters and runtime gauges still expose and parse.
func TestMetricsWithoutTelemetry(t *testing.T) {
	s := startService(t, nil)
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics without telemetry fails grammar: %v", err)
	}
	found := false
	for _, smp := range samples {
		if smp.Name == "runtime_goroutines" {
			found = true
		}
	}
	if !found {
		t.Error("runtime gauges missing when telemetry is disabled")
	}
}

// TestRequestSpans: a served request leaves a request -> admission /
// worker.serve / sim.run span tree on the collector with no dangling
// parents.
func TestRequestSpans(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "none"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}

	spans := tel.Spans()
	names := map[string]int{}
	ids := map[telemetry.SpanID]bool{}
	var reqID telemetry.SpanID
	for _, sp := range spans {
		names[sp.Name]++
		ids[sp.ID] = true
		if sp.Name == "request" {
			reqID = sp.ID
		}
	}
	for _, want := range []string{"request", "admission", "worker.serve", "sim.run"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from request trace (got %v)", want, names)
		}
	}
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %s has dangling parent %016x", sp.Name, uint64(sp.Parent))
		}
		// The cross-collector hop: the worker's sim.run must hang off
		// the request span recorded at admission.
		if sp.Name == "sim.run" && sp.Parent != reqID {
			t.Errorf("sim.run parent = %016x, want request span %016x", uint64(sp.Parent), uint64(reqID))
		}
	}
}
