package service

import (
	"encoding/gob"
	"io"
)

// writeGob / readGob are the checkpoint-section codecs for the
// service's persisted counters.
func writeGob(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }
func readGob(r io.Reader, v any) error  { return gob.NewDecoder(r).Decode(v) }
