package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	rpprof "runtime/pprof"
	"sort"
	"sync"
	"time"

	"resemble/internal/pprofparse"
	"resemble/internal/telemetry"
)

// Capture manager: a bounded ring of on-disk CPU/heap profile captures
// the service takes of itself — on demand via POST
// /debug/profile/capture, or automatically when the request-latency
// p99 or the process allocation rate crosses a configured threshold.
// Each capture directory holds heap.pprof (post-GC), cpu.pprof (when a
// CPU window was requested and no other CPU profile was running) and a
// capture.json manifest stamping the sequence number, trigger, trigger
// stats and the top flat alloc_space symbols decoded from the heap
// profile by pprofparse — so an operator reading the ring sees *what*
// was hot without leaving the box. Old captures are evicted
// oldest-first once the ring is full.

// ProfileConfig parameterizes the service capture manager. The zero
// value disables it entirely (no routes, no loop, no overhead).
type ProfileConfig struct {
	// Dir enables capturing: capture directories are created under it.
	Dir string
	// Ring bounds how many captures are kept (default 8).
	Ring int
	// CPUDuration is the CPU-profile window per capture (default 2s;
	// requests may override with ?cpu_ms=, 0 skips the CPU profile).
	CPUDuration time.Duration
	// AutoP99Ms triggers an automatic capture when the request-latency
	// p99 exceeds this many milliseconds (0 disables the trigger).
	AutoP99Ms float64
	// AutoAllocBytesPerSec triggers an automatic capture when the
	// process allocation rate exceeds this (0 disables the trigger).
	AutoAllocBytesPerSec float64
	// AutoMinInterval rate-limits automatic captures (default 30s).
	AutoMinInterval time.Duration
	// AutoTick is the monitor poll period (default 1s; tests shrink it).
	AutoTick time.Duration
}

func (pc ProfileConfig) withDefaults() ProfileConfig {
	if pc.Ring <= 0 {
		pc.Ring = 8
	}
	if pc.CPUDuration <= 0 {
		pc.CPUDuration = 2 * time.Second
	}
	if pc.AutoMinInterval <= 0 {
		pc.AutoMinInterval = 30 * time.Second
	}
	if pc.AutoTick <= 0 {
		pc.AutoTick = time.Second
	}
	return pc
}

// enabled reports whether capturing is configured at all.
func (pc ProfileConfig) enabled() bool { return pc.Dir != "" }

// autoEnabled reports whether the background trigger monitor runs.
func (pc ProfileConfig) autoEnabled() bool {
	return pc.enabled() && (pc.AutoP99Ms > 0 || pc.AutoAllocBytesPerSec > 0)
}

// CaptureInfo is one capture's manifest, returned by the capture
// endpoints and written as capture.json inside the capture directory.
type CaptureInfo struct {
	Seq        int      `json:"seq"`
	Reason     string   `json:"reason"`
	Start      string   `json:"start"` // RFC3339Nano
	DurationMS float64  `json:"duration_ms"`
	Dir        string   `json:"dir"`
	Files      []string `json:"files"`
	// Trigger stats at capture time (p99 over the rolling request
	// latency histogram; alloc rate over the last monitor tick).
	P99Ms            float64 `json:"p99_ms,omitempty"`
	AllocBytesPerSec float64 `json:"alloc_bytes_per_sec,omitempty"`
	// TopAllocSpace is the top of the flat alloc_space table decoded
	// from this capture's heap profile.
	TopAllocSpace []pprofparse.Entry `json:"top_alloc_space,omitempty"`
	Error         string             `json:"error,omitempty"`
}

// captureManager owns the capture ring. All methods are safe for
// concurrent use; only one capture runs at a time (a second request
// while one is in flight queues on the mutex).
type captureManager struct {
	cfg      ProfileConfig
	logf     func(format string, args ...any)
	captures *telemetry.Counter // total captures taken (nil-safe)

	mu       sync.Mutex
	seq      int
	ring     []CaptureInfo
	lastAuto time.Time
}

func newCaptureManager(cfg ProfileConfig, logf func(string, ...any), captures *telemetry.Counter) *captureManager {
	return &captureManager{cfg: cfg.withDefaults(), logf: logf, captures: captures}
}

// List returns the retained capture manifests, oldest first.
func (m *captureManager) List() []CaptureInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CaptureInfo(nil), m.ring...)
}

// Count returns how many captures have been taken in total.
func (m *captureManager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Capture takes one capture: post-GC heap profile always, plus a CPU
// window of cpuDur (capped at 10s; negative means the configured
// default, 0 skips CPU). The stats describe the trigger condition and
// are stamped into the manifest.
func (m *captureManager) Capture(reason string, cpuDur time.Duration, p99Ms, allocRate float64) (CaptureInfo, error) {
	m.mu.Lock()
	m.seq++
	info := CaptureInfo{
		Seq:              m.seq,
		Reason:           reason,
		Start:            time.Now().UTC().Format(time.RFC3339Nano),
		P99Ms:            p99Ms,
		AllocBytesPerSec: allocRate,
	}
	info.Dir = filepath.Join(m.cfg.Dir, fmt.Sprintf("capture-%04d", info.Seq))
	m.mu.Unlock()

	began := time.Now()
	if cpuDur < 0 {
		cpuDur = m.cfg.CPUDuration
	}
	if cpuDur > 10*time.Second {
		cpuDur = 10 * time.Second
	}
	if err := os.MkdirAll(info.Dir, 0o755); err != nil {
		return info, err
	}

	// CPU first (the window dominates capture latency), then the heap
	// snapshot so it reflects the end of the window.
	if cpuDur > 0 {
		if err := m.captureCPU(info.Dir, cpuDur); err != nil {
			// Another profiler owns the CPU (bench -profile, StartProfiles):
			// note it and keep the heap capture.
			info.Error = fmt.Sprintf("cpu profile skipped: %v", err)
		} else {
			info.Files = append(info.Files, "cpu.pprof")
		}
	}
	heapPath := filepath.Join(info.Dir, "heap.pprof")
	if err := writeHeapProfile(heapPath); err != nil {
		return info, err
	}
	info.Files = append(info.Files, "heap.pprof")
	sort.Strings(info.Files)

	if p, err := pprofparse.ParseFile(heapPath); err == nil {
		info.TopAllocSpace = p.TopByName("alloc_space", 5)
	} else if info.Error == "" {
		info.Error = fmt.Sprintf("heap profile decode: %v", err)
	}
	info.DurationMS = float64(time.Since(began)) / float64(time.Millisecond)

	if err := writeCaptureManifest(info); err != nil {
		return info, err
	}
	m.commit(info)
	m.captures.Inc()
	m.logf("service: profile capture %d (%s) -> %s", info.Seq, reason, info.Dir)
	return info, nil
}

// commit appends info to the ring, evicting the oldest capture
// directories past the ring bound.
func (m *captureManager) commit(info CaptureInfo) {
	m.mu.Lock()
	m.ring = append(m.ring, info)
	var evict []string
	for len(m.ring) > m.cfg.Ring {
		evict = append(evict, m.ring[0].Dir)
		m.ring = m.ring[1:]
	}
	m.mu.Unlock()
	for _, dir := range evict {
		if err := os.RemoveAll(dir); err != nil {
			m.logf("service: capture eviction: %v", err)
		}
	}
}

// captureCPU profiles CPU into dir/cpu.pprof for d.
func (m *captureManager) captureCPU(dir string, d time.Duration) error {
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	time.Sleep(d)
	rpprof.StopCPUProfile()
	return f.Close()
}

// writeHeapProfile snapshots the post-GC heap to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = rpprof.WriteHeapProfile(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func writeCaptureManifest(info CaptureInfo) error {
	b, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(info.Dir, "capture.json"), append(b, '\n'), 0o644)
}

// profileLoop is the automatic-trigger monitor: every tick it reads
// the request-latency p99 and the allocation rate since the previous
// tick, and takes a capture (rate-limited by AutoMinInterval) when a
// threshold is crossed.
func (s *Service) profileLoop() {
	defer s.loops.Done()
	cfg := s.profiles.cfg
	tick := time.NewTicker(cfg.AutoTick)
	defer tick.Stop()
	prev := telemetry.ReadAllocCounters()
	prevAt := time.Now()
	for {
		select {
		case <-tick.C:
			now := telemetry.ReadAllocCounters()
			nowAt := time.Now()
			dt := nowAt.Sub(prevAt).Seconds()
			var allocRate float64
			if dt > 0 {
				allocRate = float64(now.Bytes-prev.Bytes) / dt
			}
			prev, prevAt = now, nowAt
			p99 := s.hLatency.Snapshot().Summary.P99

			var reason string
			switch {
			case cfg.AutoP99Ms > 0 && p99 > cfg.AutoP99Ms:
				reason = fmt.Sprintf("auto: request p99 %.1fms > %.1fms", p99, cfg.AutoP99Ms)
			case cfg.AutoAllocBytesPerSec > 0 && allocRate > cfg.AutoAllocBytesPerSec:
				reason = fmt.Sprintf("auto: alloc rate %.0f B/s > %.0f B/s", allocRate, cfg.AutoAllocBytesPerSec)
			default:
				continue
			}
			s.profiles.mu.Lock()
			recent := time.Since(s.profiles.lastAuto) < cfg.AutoMinInterval && !s.profiles.lastAuto.IsZero()
			if !recent {
				s.profiles.lastAuto = time.Now()
			}
			s.profiles.mu.Unlock()
			if recent {
				continue
			}
			if _, err := s.profiles.Capture(reason, -1, p99, allocRate); err != nil {
				s.cfg.Logf("service: auto capture: %v", err)
			}
		case <-s.stopCh:
			return
		}
	}
}
