package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resemble/internal/pprofparse"
	"resemble/internal/telemetry"
)

// allocSink keeps the auto-trigger test's allocations live so the
// compiler cannot elide them.
var allocSink []byte

// TestProfileCaptureEndpoint: POST /debug/profile/capture takes a
// manifest-stamped capture whose heap profile round-trips through
// pprofparse, GET lists it, and the ring evicts oldest-first.
func TestProfileCaptureEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := startService(t, func(c *Config) {
		c.Profile = ProfileConfig{Dir: dir, Ring: 2}
	})

	capture := func() CaptureInfo {
		t.Helper()
		resp, err := http.Post("http://"+s.Addr()+"/debug/profile/capture?cpu_ms=20", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info CaptureInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("capture status %d (%+v)", resp.StatusCode, info)
		}
		return info
	}

	first := capture()
	if first.Seq != 1 || first.Reason == "" || first.Start == "" {
		t.Errorf("manifest not stamped: %+v", first)
	}
	// The capture directory holds the profiles plus capture.json, and
	// the heap profile decodes with the standard heap sample types.
	heap := filepath.Join(first.Dir, "heap.pprof")
	p, err := pprofparse.ParseFile(heap)
	if err != nil {
		t.Fatalf("heap profile does not round-trip: %v", err)
	}
	if p.TypeIndex("alloc_space") < 0 {
		t.Errorf("alloc_space missing from capture profile: %+v", p.SampleTypes)
	}
	if len(first.TopAllocSpace) == 0 {
		t.Error("manifest missing decoded top alloc symbols")
	}
	if _, err := os.Stat(filepath.Join(first.Dir, "capture.json")); err != nil {
		t.Errorf("capture.json missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(first.Dir, "cpu.pprof")); err != nil {
		t.Errorf("cpu.pprof missing: %v (info: %+v)", err, first)
	}

	second := capture()
	third := capture()
	if third.Seq != 3 {
		t.Errorf("seq = %d, want 3", third.Seq)
	}
	// Ring of 2: the first capture's directory is evicted.
	if _, err := os.Stat(first.Dir); !os.IsNotExist(err) {
		t.Errorf("oldest capture not evicted: stat err = %v", err)
	}
	if _, err := os.Stat(second.Dir); err != nil {
		t.Errorf("second capture evicted too early: %v", err)
	}

	resp, err := http.Get("http://" + s.Addr() + "/debug/profile/captures")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Count    int           `json:"count"`
		Captures []CaptureInfo `json:"captures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Captures) != 2 || list.Captures[0].Seq != 2 {
		t.Errorf("capture list = %+v, want captures 2 and 3", list)
	}
}

// TestProfileRoutesAbsentWhenDisabled: without Profile.Dir the debug
// routes do not exist.
func TestProfileRoutesAbsentWhenDisabled(t *testing.T) {
	s := startService(t, nil)
	resp, err := http.Post("http://"+s.Addr()+"/debug/profile/capture", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("capture route on disabled service: status %d, want 404", resp.StatusCode)
	}
}

// TestProfileAutoTrigger: the monitor loop fires a capture when the
// allocation rate crosses the configured threshold, and respects the
// rate limit.
func TestProfileAutoTrigger(t *testing.T) {
	dir := t.TempDir()
	s := startService(t, func(c *Config) {
		c.Profile = ProfileConfig{
			Dir:                  dir,
			Ring:                 4,
			CPUDuration:          10 * time.Millisecond,
			AutoAllocBytesPerSec: 1, // any allocation at all trips it
			AutoMinInterval:      time.Hour,
			AutoTick:             10 * time.Millisecond,
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.profiles.List()) >= 1 {
			break
		}
		allocSink = make([]byte, 1<<20) // keep the alloc rate comfortably above threshold
		time.Sleep(10 * time.Millisecond)
	}
	_ = allocSink
	list := s.profiles.List()
	if len(list) < 1 {
		t.Fatal("auto capture never fired")
	}
	if list[0].AllocBytesPerSec <= 0 {
		t.Errorf("auto capture missing trigger stats: %+v", list[0])
	}
	// The hour-long min interval means exactly one capture despite the
	// trigger staying hot.
	time.Sleep(50 * time.Millisecond)
	if got := s.profiles.Count(); got != 1 {
		t.Errorf("rate limit ignored: %d captures", got)
	}
}

// TestServicePprofLifecycle: Config.PprofAddr serves the pprof index
// on a separate listener which drain shuts down.
func TestServicePprofLifecycle(t *testing.T) {
	s := startService(t, func(c *Config) { c.PprofAddr = "127.0.0.1:0" })
	addr := s.PprofAddr()
	if addr == "" {
		t.Fatal("pprof address empty after Start")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Error("pprof server still serving after drain")
	}
}

// TestPhaseAllocCountersOnMetrics: with AllocAttribution enabled the
// exposition carries per-phase allocation counter families labeled by
// phase, covering the request → sim span tree.
func TestPhaseAllocCountersOnMetrics(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{AllocAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) { c.Telemetry = tel })
	if status, out := post(t, s, Request{Workload: "433.milc", Controller: "resemble-t"}); status != http.StatusOK {
		t.Fatalf("run: status %d (%s)", status, out.Error)
	}

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics fails the exposition grammar: %v", err)
	}
	phases := map[string]float64{}
	bytesByPhase := map[string]float64{}
	for _, smp := range samples {
		switch smp.Name {
		case "phase_allocs_count_total":
			phases[smp.Labels["phase"]] = smp.Value
		case "phase_allocs_bytes_total":
			bytesByPhase[smp.Labels["phase"]] = smp.Value
		}
	}
	for _, want := range []string{"request", "worker.serve", "sim.run", "sim.simulate", "window.commit"} {
		if phases[want] < 1 {
			t.Errorf("phase %q missing from exposition (phases: %v)", want, phases)
		}
	}
	if bytesByPhase["sim.run"] <= 0 {
		t.Errorf("sim.run alloc bytes = %v, want > 0", bytesByPhase["sim.run"])
	}
}
