package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resemble/internal/cas"
	"resemble/internal/core"
	"resemble/internal/ensemble/sbp"
	"resemble/internal/prefetch"
	"resemble/internal/resilience"
	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// task is one admitted simulation request moving through the queue.
type task struct {
	seq    uint64
	req    Request
	ctx    context.Context
	cancel context.CancelFunc
	span   *telemetry.Span // request span (nil when telemetry is off)
	// admitSpan is retained so its finished record can ship in the
	// response when the request asks for spans.
	admitSpan *telemetry.Span

	done   chan struct{} // closed when resp/status are final
	resp   Response
	status int
}

// finish seals the task's outcome; first caller wins.
func (t *task) finish(status int, resp Response) {
	t.resp = resp
	t.status = status
	close(t.done)
}

// committer merges per-task telemetry children back into the parent
// collector in admission-sequence order, parking out-of-order
// arrivals, so concurrent workers produce the exact window stream a
// serial execution of the same admissions would have.
type committer struct {
	mu     sync.Mutex
	parent *telemetry.Collector
	next   uint64
	parked map[uint64]*telemetry.Collector
}

// commit hands in seq's child (nil for a failed task — the slot still
// advances) and flushes every consecutively-ready child.
func (c *committer) commit(seq uint64, ch *telemetry.Collector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.parked[seq] = ch
	for {
		next, ok := c.parked[c.next]
		if !ok {
			return
		}
		delete(c.parked, c.next)
		c.parent.Merge(next) // nil-safe both ways
		c.next++
	}
}

// supervision backoff for crashed workers.
var restartBackoff = resilience.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: -1}

// wedgeGrace is how far past the request timeout a busy worker may run
// before the watchdog calls it wedged.
const wedgeGrace = 5 * time.Second

// startWorker launches worker i under supervision.
func (s *Service) startWorker(i int) {
	s.workers.Add(1)
	go s.workerLoop(i, 0)
}

// workerLoop pops and serves tasks until the queue closes and drains.
// A panic escaping a task is the supervision path: the task has
// already been answered (see serve's recover), the loop logs the
// crash and a replacement loop starts after a backoff delay — the
// drain WaitGroup slot transfers to the replacement.
func (s *Service) workerLoop(i, crashes int) {
	defer func() {
		r := recover()
		if r == nil {
			s.workers.Done()
			return
		}
		s.stats.restarts.Add(1)
		s.counter("service.workers.restarts").Inc()
		delay := restartBackoff.Delay(crashes + 1)
		s.cfg.Logf("service: worker %d crashed (%v); restarting in %s", i, r, delay)
		s.recorder.Trigger("panic.restart", fmt.Sprintf("worker %d: %v", i, r))
		go func() {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-s.stopCh:
				// Draining: skip the delay so the drain isn't held
				// hostage by the restart backoff. The replacement loop
				// still runs to drain any queued tasks.
			}
			s.workerLoop(i, crashes+1)
		}()
	}()
	for {
		t, ok := s.queue.Pop(context.Background())
		if !ok {
			return // closed and fully drained
		}
		s.serve(i, t)
		crashes = 0
	}
}

// watchdog periodically scans the worker heartbeat slots for tasks
// running far past the request deadline (a wedged simulation that is
// not honoring its interrupt flag) and surfaces them as metrics.
func (s *Service) watchdog() {
	defer s.loops.Done()
	period := s.cfg.RequestTimeout / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	if period > 5*time.Second {
		period = 5 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			limit := s.cfg.RequestTimeout + wedgeGrace
			for i := range s.busy {
				since := s.busy[i].busySince.Load()
				if since == 0 || time.Since(time.Unix(0, since)) < limit {
					continue
				}
				if s.busy[i].reported.CompareAndSwap(false, true) {
					s.stats.wedged.Add(1)
					s.counter("service.workers.wedged").Inc()
					label, _ := s.busy[i].label.Load().(string)
					s.cfg.Logf("service: worker %d wedged on %q for > %s", i, label, limit)
					s.recorder.Note("wedge", fmt.Sprintf("worker %d on %q", i, label))
				}
			}
		case <-s.stopCh:
			return
		}
	}
}

// serve runs one admitted task end to end. Panics are answered as 500
// and then re-raised so the supervision layer restarts the worker.
func (s *Service) serve(i int, t *task) {
	began := time.Now()
	wsp := t.span.Child("worker.serve")
	defer func() {
		wsp.End()
		t.span.End()
		s.hLatency.Observe(float64(time.Since(began)) / float64(time.Millisecond))
		s.cfg.Logger.Info("request served",
			"seq", t.seq,
			"span", fmt.Sprintf("%016x", uint64(t.span.Ref().ID)),
			"workload", t.req.Workload,
			"controller", t.req.Controller,
			"status", t.status,
			"worker", i,
			"dur_ms", float64(time.Since(began))/float64(time.Millisecond))
	}()
	slot := &s.busy[i]
	slot.label.Store(t.req.Workload + "/" + t.req.Controller)
	slot.busySince.Store(time.Now().UnixNano())
	defer func() {
		slot.busySince.Store(0)
		slot.reported.Store(false)
		t.cancel()
		if r := recover(); r != nil {
			s.stats.panics.Add(1)
			s.counter("service.workers.panics").Inc()
			s.stats.failed.Add(1)
			s.counter("service.requests.failed").Inc()
			s.commits.commit(t.seq, nil)
			t.finish(http.StatusInternalServerError,
				Response{Error: fmt.Sprintf("internal error: simulation panicked: %v", r)})
			panic(r) // hand the crash to the supervisor
		}
	}()

	if err := t.ctx.Err(); err != nil {
		// Expired while queued: the deadline propagated, don't burn a
		// worker on work nobody is waiting for.
		s.timeout(t)
		return
	}
	s.cfg.Chaos.slow(t.ctx)

	resp, status, err := s.simulate(t)
	switch {
	case err == nil:
		s.stats.completed.Add(1)
		s.counter("service.requests.completed").Inc()
		if t.req.ReturnSpans {
			// Seal the service-level spans before the response ships so
			// the coordinator's stitched trace carries the whole
			// request → admission → worker.serve tree, not just the
			// run's spans. End is idempotent; the deferred Ends above
			// become no-ops.
			wsp.End()
			t.span.End()
			resp.Spans = appendSpanRecords(resp.Spans, t.admitSpan, wsp, t.span)
		}
		t.finish(status, resp)
	case errors.Is(err, sim.ErrInterrupted) || errors.Is(err, context.DeadlineExceeded):
		s.timeout(t)
	default:
		s.stats.failed.Add(1)
		s.counter("service.requests.failed").Inc()
		s.commits.commit(t.seq, nil)
		t.finish(status, Response{Error: err.Error()})
	}
}

// timeout answers a deadline-expired task.
func (s *Service) timeout(t *task) {
	s.stats.timedOut.Add(1)
	s.counter("service.requests.timeout").Inc()
	s.commits.commit(t.seq, nil)
	t.finish(http.StatusGatewayTimeout,
		Response{Error: fmt.Sprintf("deadline exceeded after %s", s.cfg.RequestTimeout)})
}

// simulate builds the trace and source for the request and runs it on
// an isolated telemetry child, reporting arm health to the breakers.
// The returned status accompanies a non-nil error.
func (s *Service) simulate(t *task) (Response, int, error) {
	if s.cfg.Chaos.shouldPanic() {
		panic("chaos: injected worker panic")
	}
	req := t.req
	w, err := trace.Lookup(req.Workload)
	if err != nil {
		return Response{}, http.StatusBadRequest, err
	}
	tr := s.cfg.Traces.Get(w, req.Accesses, w.Seed+req.Seed)
	tr = s.cfg.Chaos.wrapTrace(tr)

	src, probe, armIdx, excluded, err := s.buildSource(req)
	if err != nil {
		var unavail errUnavailable
		if errors.As(err, &unavail) {
			return Response{}, http.StatusServiceUnavailable, err
		}
		return Response{}, http.StatusBadRequest, err
	}

	// Bridge the context deadline into the simulator's interrupt flag:
	// when the deadline (or a client disconnect) fires, the run winds
	// down at the next record instead of simulating on unobserved.
	var stop atomic.Bool
	defer context.AfterFunc(t.ctx, func() { stop.Store(true) })()
	if t.ctx.Err() != nil {
		// Already expired (e.g. the deadline passed while queued or
		// stalled): AfterFunc only schedules its callback on a new
		// goroutine, which a short CPU-bound run on GOMAXPROCS=1 can
		// finish ahead of. Seed the flag synchronously so the run
		// interrupts at its first record.
		stop.Store(true)
	}

	// Durable run checkpoints: with a store attached, the run snapshots
	// into it periodically and at interrupt, tagged by the run-identity
	// hash, so a coordinator can resume the run on another backend.
	// Sources that cannot snapshot (not every controller implements
	// checkpoint.Stater) run without durability rather than failing.
	store := s.cfg.Store
	canCkp := sim.CanCheckpoint(src)
	var key, lastCkpID string
	var storeOpts []sim.Option
	if store != nil && canCkp {
		key = RunKey(req)
		sink := func(blob []byte, cursor int) error {
			id, perr := store.PutTagged(cas.KindCheckpoint, blob,
				CheckpointTag(key, cursor), CheckpointLatestTag(key))
			if perr != nil {
				// Durability degrades; run correctness is unaffected.
				s.stats.runCkpFailures.Add(1)
				s.counter("service.run.checkpoint.failures").Inc()
				s.cfg.Logf("service: run checkpoint (run %.12s…, cursor %d): %v", key, cursor, perr)
				return nil
			}
			lastCkpID = id.String()
			s.stats.runCkpWrites.Add(1)
			s.counter("service.run.checkpoint.writes").Inc()
			return nil
		}
		storeOpts = []sim.Option{
			sim.WithCheckpointScope(key),
			sim.WithCheckpointSink(s.cfg.RunCheckpointEvery, sink),
		}
	}
	resumedFrom := ""
	var resumeOpts []sim.Option
	if store != nil && req.ResumeFrom != "" {
		if !canCkp {
			s.noteResumeFallback(req.ResumeFrom,
				fmt.Errorf("source %q does not support checkpointing", req.Controller))
		} else if blob := s.fetchResume(store, req.ResumeFrom); blob != nil {
			resumeOpts = []sim.Option{sim.WithResumeBlob(blob)}
			resumedFrom = req.ResumeFrom
		}
	}

	// The run's spans record on the isolated child collector but parent
	// under the request span (cross-collector SpanRef), so the merged
	// trace reads request → admission → worker.serve → sim.run → ….
	baseOpts := func(child *telemetry.Collector) []sim.Option {
		opts := []sim.Option{sim.WithTelemetry(child), sim.WithInterrupt(&stop),
			sim.WithSpanParent(t.span.Ref())}
		return append(opts, storeOpts...)
	}
	child := s.cfg.Telemetry.Child()
	runner := s.runner.With(append(baseOpts(child), resumeOpts...)...)
	began := time.Now()
	res, err := runner.Run(tr, src)
	if errors.Is(err, sim.ErrBadResume) {
		// The snapshot was unusable (corrupt container, or a scope for a
		// different run). After ErrBadResume the source and collector
		// state is unspecified, so rebuild both and run from scratch —
		// the determinism contract makes that merely slower, never wrong.
		s.noteResumeFallback(resumedFrom, err)
		resumedFrom = ""
		src, probe, armIdx, excluded, err = s.buildSource(req)
		if err != nil {
			var unavail errUnavailable
			if errors.As(err, &unavail) {
				return Response{}, http.StatusServiceUnavailable, err
			}
			return Response{}, http.StatusBadRequest, err
		}
		child = s.cfg.Telemetry.Child()
		runner = s.runner.With(baseOpts(child)...)
		began = time.Now()
		res, err = runner.Run(tr, src)
	}
	if err != nil {
		// Breakers learn nothing from an aborted run; the child's
		// partial windows are discarded so the merged stream only ever
		// contains completed runs. An interrupted run's last durable
		// checkpoint stays tagged in the store for the failover retry.
		return Response{}, http.StatusInternalServerError, err
	}
	if resumedFrom != "" {
		s.stats.resumes.Add(1)
		s.counter("service.runs.resumed").Inc()
	}
	if store != nil && canCkp {
		// The run completed: its checkpoints have served their purpose.
		// Release the tags and collect the garbage so the store holds
		// only checkpoints of in-flight (or interrupted) runs.
		if n, uerr := store.UntagPrefix(CheckpointTagPrefix(key)); uerr == nil && n > 0 {
			if _, _, gerr := store.GC(); gerr != nil {
				s.cfg.Logf("service: store GC after run %.12s…: %v", key, gerr)
			}
		}
	}

	masked := s.reportArms(probe, armIdx)
	if len(masked) > 0 {
		s.stats.maskedRuns.Add(1)
		s.counter("service.runs.masked").Inc()
	}
	s.commits.commit(t.seq, child)
	// Merge leaves the child's window slice intact, so the shipped
	// windows are exactly the stream just committed to the parent.
	var windows []telemetry.WindowSnapshot
	if req.ReturnWindows {
		windows = child.Windows()
	}
	// Likewise the child's spans: the run tree (sim.run and below),
	// already parented under the request span via the cross-collector
	// ref. serve appends the service-level spans before the response
	// ships.
	var spans []telemetry.SpanRecord
	if req.ReturnSpans {
		spans = child.Spans()
	}

	return Response{
		Workload:          res.Workload,
		Controller:        req.Controller,
		Accesses:          len(tr.Records),
		Seed:              req.Seed,
		IPC:               res.IPC,
		MPKI:              res.MPKI,
		Accuracy:          res.Accuracy,
		Coverage:          res.Coverage,
		Instructions:      res.Instructions,
		LLCMisses:         res.LLCMisses,
		PrefetchesIssued:  res.PrefetchesIssued,
		UsefulPrefetches:  res.UsefulPrefetches,
		DroppedPrefetches: res.DroppedPrefetches,
		ExcludedArms:      excluded,
		MaskedArms:        masked,
		DurationMS:        float64(time.Since(began)) / float64(time.Millisecond),
		Windows:           windows,
		Spans:             spans,
		CheckpointID:      lastCkpID,
		ResumedFrom:       resumedFrom,
	}, http.StatusOK, nil
}

// appendSpanRecords appends the finished records of the given span
// handles (skipping nil or still-open ones).
func appendSpanRecords(dst []telemetry.SpanRecord, spans ...*telemetry.Span) []telemetry.SpanRecord {
	for _, sp := range spans {
		if rec, ok := sp.Record(); ok {
			dst = append(dst, rec)
		}
	}
	return dst
}

// fetchResume pulls a requested resume checkpoint out of the store.
// nil means the run starts from scratch instead: a missing, corrupt or
// wrong-kind blob is a degraded warm start, not a request failure (the
// HTTP layer already rejected malformed IDs with 400).
func (s *Service) fetchResume(store *cas.Store, from string) []byte {
	id, err := cas.ParseID(from)
	if err != nil {
		s.noteResumeFallback(from, err)
		return nil
	}
	blob, kind, err := store.Get(id)
	if err != nil {
		s.noteResumeFallback(from, err)
		return nil
	}
	if kind != cas.KindCheckpoint {
		s.noteResumeFallback(from, fmt.Errorf("artifact %s is a %s, not a checkpoint", from, kind))
		return nil
	}
	return blob
}

// noteResumeFallback accounts one requested resume that degraded to a
// scratch run.
func (s *Service) noteResumeFallback(from string, err error) {
	s.stats.resumeFallbacks.Add(1)
	s.counter("service.runs.resume_fallback").Inc()
	s.cfg.Logf("service: resume from %.12s… fell back to scratch: %v", from, err)
}

// BuildSource builds the prefetch source the service would simulate
// for req, through the same breaker admission as the serving path
// (nil source for the "none" baseline). A never-started Service with
// identical configuration serves as the batch reference: its breakers
// are all closed, so construction matches a serial sim.Runner setup —
// the soak harness uses this for the byte-identity check.
func (s *Service) BuildSource(req Request) (sim.Source, []string, error) {
	src, _, _, excluded, err := s.buildSource(req)
	return src, excluded, err
}

// errUnavailable marks a request that cannot be served right now (all
// its arms' breakers are open) as distinct from a malformed one.
type errUnavailable struct{ msg string }

func (e errUnavailable) Error() string { return e.msg }

// buildSource constructs the request's prefetch source, excluding
// ensemble arms whose breakers refuse admission. The returned armIdx
// maps the built source's arm positions back to arm names so the
// end-of-run masking report reaches the right breaker; probe is nil
// for sources without a masking signal.
func (s *Service) buildSource(req Request) (src sim.Source, probe maskProbe, armIdx []string, excluded []string, err error) {
	// Solo arms and the baseline first.
	switch req.Controller {
	case "none":
		return nil, nil, nil, nil, nil
	case "bo", "spp", "isb", "domino":
		if !s.breakers[req.Controller].Allow() {
			return nil, nil, nil, nil,
				errUnavailable{fmt.Sprintf("arm %q circuit breaker is open", req.Controller)}
		}
		p, aerr := newArm(req.Controller)
		if aerr != nil {
			return nil, nil, nil, nil, aerr
		}
		return sim.FromPrefetcher(s.cfg.Chaos.wrapArm(req.Controller, p), 2),
			nil, []string{req.Controller}, nil, nil
	}

	// Ensemble controllers: admit each arm through its breaker.
	var arms []prefetch.Prefetcher
	for _, name := range ArmNames() {
		if !s.breakers[name].Allow() {
			excluded = append(excluded, name)
			continue
		}
		p, aerr := newArm(name)
		if aerr != nil {
			return nil, nil, nil, nil, aerr
		}
		arms = append(arms, s.cfg.Chaos.wrapArm(name, p))
		armIdx = append(armIdx, name)
	}
	if len(arms) == 0 {
		return nil, nil, nil, nil,
			errUnavailable{"all ensemble arms' circuit breakers are open"}
	}

	switch req.Controller {
	case "resemble":
		ctl := core.NewController(s.controllerConfig(req), arms)
		return ctl, ctl, armIdx, excluded, nil
	case "resemble-t":
		cfg := s.controllerConfig(req)
		cfg.TableHashBits = 8
		ctl := core.NewTabularController(cfg, arms)
		return ctl, ctl, armIdx, excluded, nil
	case "sbp-e":
		return sbp.New(sbp.Config{}, arms), nil, armIdx, excluded, nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("unknown controller %q (want one of %v)",
			req.Controller, Controllers())
	}
}

// controllerConfig mirrors the batch experiment configuration
// (experiments.Options.controllerConfig) and layers the accuracy
// masking on at the robustness fault-matrix operating point, so the
// breakers have a degradation signal to key off.
func (s *Service) controllerConfig(req Request) core.Config {
	if s.cfg.ControllerConfig != nil {
		return s.cfg.ControllerConfig(req)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 1 + req.Seed
	cfg.FixedFrac = req.FixedFrac
	if !s.cfg.DisableMasking {
		cfg.MaskFloor = 0.2
		cfg.MaskWindow = 1024
		cfg.MaskBadWindows = 2
		cfg.MaskMinSamples = 16
		cfg.MaskReprobe = 16 * 1024
	}
	return cfg
}

// reportArms feeds each simulated arm's end-of-run masking state to
// its breaker and returns the names of the arms that finished masked.
// An arm ending the run masked counts as one breaker failure; the
// breaker trips only after FailureThreshold consecutive masked runs,
// so a transient in-run mask that reprobes clean never opens it.
func (s *Service) reportArms(probe maskProbe, armIdx []string) (masked []string) {
	if probe == nil {
		return nil
	}
	for i, name := range armIdx {
		ok := !probe.ArmMasked(i)
		s.breakers[name].Report(ok)
		if !ok {
			masked = append(masked, name)
		}
	}
	return masked
}
