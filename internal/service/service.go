// Package service turns the batch reproduction into a long-running,
// self-protecting prefetch-simulation server: a supervised engine that
// owns a sim.Runner, accepts simulation requests over a JSON HTTP API,
// and stays correct and available when dependencies misbehave under
// sustained load.
//
// The resilience layout (see DESIGN.md §9):
//
//   - admission: a bounded resilience.Queue sheds the newest arrivals
//     with 503 + Retry-After once full, and the readiness probe flips
//     to unready while the queue is saturated;
//   - execution: a pool of panic-recovering workers, restarted with
//     backoff by the supervisor, each bounding its run with the
//     request deadline (propagated through context into the
//     simulator's interrupt flag) and watched by a wedge watchdog;
//   - degradation: one circuit breaker per ensemble arm, fed by the
//     controller's accuracy-masking signal (internal/core) — an arm
//     that ends several consecutive runs masked is excluded from new
//     ensembles until its breaker half-opens and a probe run clears
//     it;
//   - persistence: service counters are checkpointed periodically and
//     on drain through internal/checkpoint's retrying atomic writes;
//   - observability: every decision surfaces through the telemetry
//     registry and the /metrics endpoint.
//
// On the happy path the resilience layer is observation-only: a
// zero-fault soak produces telemetry window output byte-identical to
// the equivalent batch sim.Runner invocation (pinned by
// TestServiceHappyPathMatchesBatch).
package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resemble/internal/cas"
	"resemble/internal/checkpoint"
	"resemble/internal/core"
	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/domino"
	"resemble/internal/prefetch/isb"
	"resemble/internal/prefetch/spp"
	"resemble/internal/resilience"
	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// Config parameterizes a Service. The zero value listens on an
// ephemeral localhost port with sensible defaults.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Workers is the simulation worker count (default 2).
	Workers int
	// QueueDepth bounds the admission queue (default 32).
	QueueDepth int
	// RequestTimeout bounds one simulation request end to end
	// (default 60s). The deadline propagates into the simulator via
	// its interrupt flag, so a timed-out run winds down instead of
	// simulating on unobserved.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain (default 30s).
	DrainTimeout time.Duration
	// DefaultAccesses is the trace length when a request omits it
	// (default 20000); MaxAccesses is the admission cap (default 500k).
	DefaultAccesses int
	MaxAccesses     int

	// CheckpointPath enables service-state checkpoints (periodic and
	// on drain); CheckpointEvery is the period (default 15s).
	CheckpointPath  string
	CheckpointEvery time.Duration
	// Resume restores the service counters from CheckpointPath at
	// startup when the file exists.
	Resume bool

	// Store, when non-nil, is the durable artifact store: every run
	// periodically checkpoints into it (keyed by the run-request hash
	// and access cursor, see RunKey/CheckpointTag) and /v1/run accepts
	// resume_from to warm-start from a stored checkpoint. The store is
	// shared infrastructure — attaching it to the trace cache
	// (trace.Cache.AttachStore) is the owner's call, not the service's.
	Store *cas.Store
	// RunCheckpointEvery is the access-count period between run
	// checkpoints (default 5000 when Store is set). A run interrupted
	// by its deadline always writes one final checkpoint at the
	// interrupt cursor regardless of the period.
	RunCheckpointEvery int

	// Telemetry, when non-nil, instruments every simulation (window
	// snapshots, sampled events) and carries the service's registry
	// metrics. Nil disables instrumentation; the service still tracks
	// its own Stats. It also enables the observability extras below:
	// the metrics-history sampler and the incident flight recorder.
	Telemetry *telemetry.Collector
	// HistoryEvery is the metrics-history sampling period (default 1s)
	// and HistorySamples the ring capacity (default 120 — two minutes
	// of retention). The ring serves /metrics/history and rides along
	// in incident bundles.
	HistoryEvery   time.Duration
	HistorySamples int
	// IncidentMinInterval rate-limits automatic incident captures
	// (default 5s); IncidentP99MS, when positive, adds a p99-breach
	// trigger checked at each history tick against the request-latency
	// histogram.
	IncidentMinInterval time.Duration
	IncidentP99MS       float64
	// SimConfig overrides the simulation configuration (nil = default).
	SimConfig *sim.Config
	// Breaker parameterizes the per-arm circuit breakers.
	Breaker resilience.BreakerConfig
	// DisableMasking turns off the controllers' accuracy masking (and
	// with it the breaker feedback signal). Masking is on by default:
	// it is the degradation signal the breakers key off.
	DisableMasking bool
	// ControllerConfig, when non-nil, overrides the ensemble controller
	// configuration derived for a request (the default is the batch
	// experiment configuration plus the robustness fault-matrix masking
	// operating point). Tests and soak harnesses use it to shrink the
	// masking windows so degradation trips quickly.
	ControllerConfig func(Request) core.Config
	// Traces overrides the trace cache (nil = trace.Shared()).
	Traces *trace.Cache
	// Chaos, when non-nil, injects faults into the serving path — see
	// the Chaos type. Nil means no injection and no overhead.
	Chaos *Chaos
	// PprofAddr, when non-empty, serves the net/http/pprof handlers on
	// a separate listener (e.g. "127.0.0.1:0"); the server is shut down
	// on drain.
	PprofAddr string
	// Profile configures the capture manager (see ProfileConfig); the
	// zero value disables it.
	Profile ProfileConfig
	// Logf receives operational log lines (nil discards them unless
	// Logger is set, in which case they route through it at Info).
	Logf func(format string, args ...any)
	// Logger receives structured request/lifecycle logs carrying the
	// correlation IDs (admission seq, span ID) that also appear in the
	// span trace. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.DefaultAccesses <= 0 {
		c.DefaultAccesses = 20000
	}
	if c.MaxAccesses <= 0 {
		c.MaxAccesses = 500000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 15 * time.Second
	}
	if c.HistoryEvery <= 0 {
		c.HistoryEvery = telemetry.DefaultHistoryEvery
	}
	if c.HistorySamples <= 0 {
		c.HistorySamples = telemetry.DefaultHistorySamples
	}
	if c.Store != nil && c.RunCheckpointEvery <= 0 {
		c.RunCheckpointEvery = 5000
	}
	if c.Traces == nil {
		c.Traces = trace.Shared()
	}
	if c.Logf == nil {
		if lg := c.Logger; lg != nil {
			c.Logf = func(format string, args ...any) { lg.Info(fmt.Sprintf(format, args...)) }
		} else {
			c.Logf = func(string, ...any) {}
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// ArmNames lists the ensemble input prefetchers the service builds,
// in controller arm order — the breaker set is keyed by these names.
func ArmNames() []string { return []string{"bo", "spp", "isb", "domino"} }

// newArm constructs one input prefetcher by name.
func newArm(name string) (prefetch.Prefetcher, error) {
	switch name {
	case "bo":
		return bo.New(bo.Config{}), nil
	case "spp":
		return spp.New(spp.Config{}), nil
	case "isb":
		return isb.New(isb.Config{}), nil
	case "domino":
		return domino.New(domino.Config{}), nil
	}
	return nil, fmt.Errorf("service: unknown arm %q", name)
}

// Controllers lists the accepted request controllers: the ensemble
// controllers, the individual arms, and "none" (baseline).
func Controllers() []string {
	return append([]string{"resemble", "resemble-t", "sbp-e", "none"}, ArmNames()...)
}

// maskProbe is the slice of the controller API the breaker feedback
// uses; both core controllers implement it.
type maskProbe interface {
	ArmMasked(i int) bool
	MaskedArms() int
}

// State is the service lifecycle position.
type State int32

// Lifecycle: Starting (constructed, not yet serving), Ready
// (admitting), Draining (rejecting new work, finishing queued work),
// Stopped (drained, final checkpoint written).
const (
	Starting State = iota
	Ready
	Draining
	Stopped
)

func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Ready:
		return "ready"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Service is the resilient prefetch-simulation daemon engine.
type Service struct {
	cfg    Config
	runner *sim.Runner

	state atomic.Int32

	queue    *resilience.Queue[*task]
	breakers map[string]*resilience.Breaker
	budget   *resilience.Budget

	ln  net.Listener
	srv *http.Server

	pprofAddr string       // bound pprof listen address (empty when off)
	pprofSrv  *http.Server // shut down on drain

	profiles *captureManager // nil when ProfileConfig is disabled

	// history and recorder are non-nil iff telemetry is enabled: the
	// periodic registry sample ring behind /metrics/history, and the
	// incident flight recorder behind /debug/incidents. Both are
	// nil-safe, so trigger sites never branch.
	history  *telemetry.History
	recorder *telemetry.FlightRecorder

	// admitMu serializes admission so queue order equals telemetry
	// commit order.
	admitMu sync.Mutex
	nextSeq uint64
	commits committer

	workers  sync.WaitGroup // worker goroutines
	loops    sync.WaitGroup // supervisor, watchdog, checkpoint loop
	httpDone chan struct{}  // closed when the http server goroutine exits
	stopCh   chan struct{}  // closed on drain to stop the background loops

	busy []workerStatus // per-worker heartbeat slots

	stats serviceCounters

	aborted atomic.Bool // Abort severed the HTTP front (chaos harness)

	drainOnce sync.Once
	drainErr  error
	drained   chan struct{} // closed when drain completes

	start time.Time // process-health uptime anchor

	// metric handles (nil-safe when telemetry is off)
	mQueueDepth *telemetry.Gauge
	mReady      *telemetry.Gauge
	mBreaker    map[string]*telemetry.Gauge
	// hLatency tracks end-to-end request latency in milliseconds; the
	// capture manager's p99 auto-trigger reads it.
	hLatency *telemetry.Histogram
}

// serviceCounters is the service's own always-on accounting (the
// telemetry registry mirrors it when instrumentation is enabled).
type serviceCounters struct {
	admitted, completed, shed, rejected atomic.Uint64
	failed, timedOut                    atomic.Uint64
	panics, restarts, wedged            atomic.Uint64
	ckpWrites, ckpRetries, ckpFailures  atomic.Uint64
	maskedRuns                          atomic.Uint64

	// Artifact-store run-checkpoint accounting (zero without a Store).
	runCkpWrites, runCkpFailures atomic.Uint64
	resumes, resumeFallbacks     atomic.Uint64
}

// workerStatus is one worker's heartbeat slot for the watchdog.
type workerStatus struct {
	busySince atomic.Int64 // unix nanos; 0 = idle
	reported  atomic.Bool  // wedge already counted for this task
	label     atomic.Value // string: request being served
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	State         string `json:"state"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Admitted      uint64 `json:"requests_admitted"`
	Completed     uint64 `json:"requests_completed"`
	Shed          uint64 `json:"requests_shed"`
	Rejected      uint64 `json:"requests_rejected"`
	Failed        uint64 `json:"requests_failed"`
	TimedOut      uint64 `json:"requests_timed_out"`
	Panics        uint64 `json:"worker_panics"`
	Restarts      uint64 `json:"worker_restarts"`
	Wedged        uint64 `json:"tasks_wedged"`
	MaskedRuns    uint64 `json:"runs_with_masked_arms"`
	CkpWrites     uint64 `json:"checkpoint_writes"`
	CkpRetries    uint64 `json:"checkpoint_retries"`
	CkpFailures   uint64 `json:"checkpoint_failures"`
	// Run-checkpoint accounting against the artifact store: durable
	// snapshots written mid-run, runs warm-started from a snapshot, and
	// requested resumes that fell back to a scratch run because the
	// snapshot was missing, corrupt or for a different run.
	RunCkpWrites    uint64            `json:"run_checkpoint_writes"`
	RunCkpFailures  uint64            `json:"run_checkpoint_failures"`
	Resumes         uint64            `json:"runs_resumed"`
	ResumeFallbacks uint64            `json:"resume_fallbacks"`
	Breakers        map[string]string `json:"breakers"`
	BreakerTrips    map[string]uint64 `json:"breaker_trips"`
}

// New validates the configuration and builds a stopped service; Start
// makes it listen and admit.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	simCfg := sim.DefaultConfig()
	if cfg.SimConfig != nil {
		simCfg = *cfg.SimConfig
	}
	s := &Service{
		cfg:      cfg,
		breakers: make(map[string]*resilience.Breaker),
		budget:   &resilience.Budget{Capacity: 10, Ratio: 0.1},
		httpDone: make(chan struct{}),
		stopCh:   make(chan struct{}),
		drained:  make(chan struct{}),
		busy:     make([]workerStatus, cfg.Workers),
		mBreaker: make(map[string]*telemetry.Gauge),
		start:    time.Now(),
	}
	s.runner = sim.NewRunner(simCfg, sim.WithTelemetry(cfg.Telemetry))
	reg := cfg.Telemetry.Registry()
	s.mQueueDepth = reg.Gauge("service.queue.depth")
	s.mReady = reg.Gauge("service.ready")
	s.hLatency = reg.Histogram("service.request.latency.ms")
	if s.hLatency == nil {
		// No telemetry registry: keep a standalone histogram so the
		// capture manager's p99 trigger still has a signal.
		s.hLatency = &telemetry.Histogram{}
	}
	if cfg.Profile.enabled() {
		s.profiles = newCaptureManager(cfg.Profile, cfg.Logf, reg.Counter("service.profile.captures"))
	}
	if cfg.Telemetry != nil {
		s.history = telemetry.NewHistory(cfg.HistorySamples)
		s.recorder = telemetry.NewFlightRecorder(telemetry.RecorderConfig{
			Process:     "resembled",
			MinInterval: cfg.IncidentMinInterval,
			// Incident bundles ride alongside PR 6's profile captures:
			// attach the retained capture manifests so the bundle points
			// at the pprof data taken around the same window.
			Decorate: func(inc *telemetry.Incident) {
				if s.profiles != nil {
					if list := s.profiles.List(); len(list) > 0 {
						inc.Captures = list
					}
				}
			},
		}, cfg.Telemetry, s.history)
	}
	for _, arm := range ArmNames() {
		arm := arm
		bcfg := cfg.Breaker
		gauge := reg.Gauge("service.breaker.state." + arm)
		s.mBreaker[arm] = gauge
		trips := reg.Counter("service.breaker.trips." + arm)
		prev := bcfg.OnTransition
		bcfg.OnTransition = func(from, to resilience.BreakerState) {
			gauge.Set(float64(to))
			if to == resilience.Open {
				trips.Inc()
				s.recorder.Trigger("breaker.trip", arm)
			} else {
				s.recorder.Note("breaker."+to.String(), arm)
			}
			s.cfg.Logf("service: breaker %s: %s -> %s", arm, from, to)
			if prev != nil {
				prev(from, to)
			}
		}
		s.breakers[arm] = resilience.NewBreaker(bcfg)
	}
	s.queue = resilience.NewQueue[*task](cfg.QueueDepth, func(depth, capacity int) {
		s.mQueueDepth.Set(float64(depth))
		s.updateReady()
	})
	s.commits.parent = cfg.Telemetry
	s.commits.parked = make(map[uint64]*telemetry.Collector)
	if cfg.Resume && cfg.CheckpointPath != "" {
		if err := s.loadCheckpoint(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// State returns the lifecycle position.
func (s *Service) State() State { return State(s.state.Load()) }

// PprofAddr returns the bound pprof listen address (empty when
// Config.PprofAddr is unset or before Start).
func (s *Service) PprofAddr() string { return s.pprofAddr }

// Breaker returns the named arm's breaker (nil when unknown) — used
// by the in-process soak assertions.
func (s *Service) Breaker(arm string) *resilience.Breaker { return s.breakers[arm] }

// ready mirrors the /readyz decision: admitting and not saturated.
func (s *Service) ready() bool {
	return s.State() == Ready && !s.queue.Saturated()
}

// updateReady publishes the readiness decision as the service.ready
// gauge, so /readyz flips are visible as a 1→0→1 transition on
// /metrics. Refreshed on every queue depth change, on lifecycle
// transitions, and at scrape time.
func (s *Service) updateReady() {
	v := 0.0
	if s.ready() {
		v = 1
	}
	s.mReady.Set(v)
}

// metricsSnapshot assembles the exposition view: the telemetry
// registry snapshot (empty when telemetry is off) with the service's
// own authoritative counters, queue/breaker/retry-budget gauges and
// the runtime health gauges overlaid. The service counters override
// the registry mirrors of the same names, so /metrics is correct even
// when instrumentation is disabled or a resume restored the counters.
func (s *Service) metricsSnapshot() telemetry.RegistrySnapshot {
	reg := s.cfg.Telemetry.Registry()
	telemetry.UpdateRuntimeGauges(reg, s.start)
	s.updateReady()
	snap := reg.Snapshot()
	st := s.Stats()
	snap.Counters["service.requests.admitted"] = st.Admitted
	snap.Counters["service.requests.completed"] = st.Completed
	snap.Counters["service.requests.shed"] = st.Shed
	snap.Counters["service.requests.rejected"] = st.Rejected
	snap.Counters["service.requests.failed"] = st.Failed
	snap.Counters["service.requests.timeout"] = st.TimedOut
	snap.Counters["service.workers.panics"] = st.Panics
	snap.Counters["service.workers.restarts"] = st.Restarts
	snap.Counters["service.workers.wedged"] = st.Wedged
	snap.Counters["service.runs.masked"] = st.MaskedRuns
	snap.Counters["service.checkpoint.writes"] = st.CkpWrites
	snap.Counters["service.checkpoint.retries"] = st.CkpRetries
	snap.Counters["service.checkpoint.failures"] = st.CkpFailures
	snap.Counters["service.run.checkpoint.writes"] = st.RunCkpWrites
	snap.Counters["service.run.checkpoint.failures"] = st.RunCkpFailures
	snap.Counters["service.runs.resumed"] = st.Resumes
	snap.Counters["service.runs.resume_fallback"] = st.ResumeFallbacks
	snap.Gauges["service.queue.depth"] = float64(st.QueueDepth)
	snap.Gauges["service.queue.capacity"] = float64(st.QueueCapacity)
	snap.Gauges["service.state"] = float64(s.state.Load())
	ready := 0.0
	if s.ready() {
		ready = 1
	}
	snap.Gauges["service.ready"] = ready
	snap.Gauges["service.retry.budget"] = s.budget.Tokens()
	// Per-phase allocation attribution (empty unless the collector runs
	// with Config.AllocAttribution): one counter triple per phase,
	// folded into labeled families by the /metrics relabel rules.
	for _, pa := range s.cfg.Telemetry.PhaseAllocs() {
		snap.Counters["phase.allocs.count."+pa.Phase] = pa.Count
		snap.Counters["phase.allocs.bytes."+pa.Phase] = pa.AllocBytes
		snap.Counters["phase.allocs.objects."+pa.Phase] = pa.AllocObjects
	}
	if s.profiles != nil {
		snap.Counters["service.profile.captures"] = uint64(s.profiles.Count())
	}
	for name, b := range s.breakers {
		snap.Gauges["service.breaker.state."+name] = float64(b.State())
		snap.Counters["service.breaker.trips."+name] = b.Trips()
	}
	if reg == nil {
		// No registry to carry the runtime gauges: compute them into a
		// throwaway registry so the exposition stays complete.
		tmp := telemetry.NewRegistry()
		telemetry.UpdateRuntimeGauges(tmp, s.start)
		for name, v := range tmp.Snapshot().Gauges {
			snap.Gauges[name] = v
		}
	}
	return snap
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		State:           s.State().String(),
		QueueDepth:      s.queue.Depth(),
		QueueCapacity:   s.queue.Capacity(),
		Admitted:        s.stats.admitted.Load(),
		Completed:       s.stats.completed.Load(),
		Shed:            s.stats.shed.Load(),
		Rejected:        s.stats.rejected.Load(),
		Failed:          s.stats.failed.Load(),
		TimedOut:        s.stats.timedOut.Load(),
		Panics:          s.stats.panics.Load(),
		Restarts:        s.stats.restarts.Load(),
		Wedged:          s.stats.wedged.Load(),
		MaskedRuns:      s.stats.maskedRuns.Load(),
		CkpWrites:       s.stats.ckpWrites.Load(),
		CkpRetries:      s.stats.ckpRetries.Load(),
		CkpFailures:     s.stats.ckpFailures.Load(),
		RunCkpWrites:    s.stats.runCkpWrites.Load(),
		RunCkpFailures:  s.stats.runCkpFailures.Load(),
		Resumes:         s.stats.resumes.Load(),
		ResumeFallbacks: s.stats.resumeFallbacks.Load(),
		Breakers:        map[string]string{},
		BreakerTrips:    map[string]uint64{},
	}
	for name, b := range s.breakers {
		st.Breakers[name] = b.State().String()
		st.BreakerTrips[name] = b.Trips()
	}
	return st
}

// Start binds the listener and launches the workers, the supervisor
// loops and the HTTP server. It returns once the service is ready.
func (s *Service) Start() error {
	if !s.state.CompareAndSwap(int32(Starting), int32(Ready)) {
		return fmt.Errorf("service: already started")
	}
	s.updateReady()
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		defer close(s.httpDone)
		// http.ErrServerClosed is the normal shutdown path.
		if serr := s.srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			s.cfg.Logf("service: http server: %v", serr)
		}
	}()
	if s.cfg.PprofAddr != "" {
		addr, psrv, perr := telemetry.ServePprof(s.cfg.PprofAddr)
		if perr != nil {
			ln.Close()
			return fmt.Errorf("service: pprof: %w", perr)
		}
		s.pprofAddr, s.pprofSrv = addr, psrv
		s.cfg.Logf("service: pprof on %s", addr)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.startWorker(i)
	}
	s.recorder.SetProcess("resembled " + s.Addr())
	if s.history != nil {
		s.loops.Add(1)
		go s.historyLoop()
	}
	s.loops.Add(1)
	go s.watchdog()
	if s.cfg.CheckpointPath != "" {
		s.loops.Add(1)
		go s.checkpointLoop()
	}
	if s.profiles != nil && s.profiles.cfg.autoEnabled() {
		s.loops.Add(1)
		go s.profileLoop()
	}
	s.cfg.Logf("service: ready on %s (%d workers, queue %d)",
		s.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
	return nil
}

// Drain gracefully stops the service: admission closes (new requests
// get 503 + Retry-After), queued and in-flight work completes, the
// background loops stop, a final checkpoint is written, and the HTTP
// server shuts down. Idempotent; every caller gets the same result.
func (s *Service) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.state.Store(int32(Draining))
		s.updateReady()
		s.cfg.Logf("service: draining (queue depth %d)", s.queue.Depth())
		s.queue.Close()
		close(s.stopCh)

		done := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("service: drain aborted: %w", ctx.Err())
		case <-time.After(s.cfg.DrainTimeout):
			s.drainErr = fmt.Errorf("service: drain timed out after %s", s.cfg.DrainTimeout)
		}
		s.loops.Wait()

		if s.cfg.CheckpointPath != "" {
			if err := s.writeCheckpoint(ctx); err != nil {
				s.cfg.Logf("service: final checkpoint: %v", err)
				if s.drainErr == nil {
					s.drainErr = err
				}
			}
		}
		if s.srv != nil {
			if s.aborted.Load() {
				// Abort already closed the server; Serve has returned.
				<-s.httpDone
			} else {
				shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := s.srv.Shutdown(shutCtx); err != nil && s.drainErr == nil {
					s.drainErr = fmt.Errorf("service: http shutdown: %w", err)
				}
				<-s.httpDone
			}
		}
		if s.pprofSrv != nil {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.pprofSrv.Shutdown(shutCtx); err != nil && s.drainErr == nil {
				s.drainErr = fmt.Errorf("service: pprof shutdown: %w", err)
			}
		}
		s.state.Store(int32(Stopped))
		s.cfg.Logf("service: stopped (served %d, shed %d, failed %d)",
			s.stats.completed.Load(), s.stats.shed.Load(), s.stats.failed.Load())
		close(s.drained)
	})
	<-s.drained
	return s.drainErr
}

// Abort severs the service's HTTP front immediately — the listener
// and every established connection close mid-flight, with no drain
// and no goodbye. From a remote peer's point of view this is
// indistinguishable from a SIGKILL: in-flight requests die with a
// connection error and new connects are refused. The engine behind
// the front (workers, queue, loops) keeps running; the cluster chaos
// harness uses Abort to simulate losing a backend and later calls
// Close to reap the carcass without tripping the goroutine-leak audit.
func (s *Service) Abort() {
	if s.srv == nil || !s.aborted.CompareAndSwap(false, true) {
		return
	}
	s.cfg.Logf("service: ABORT: http front severed (simulated kill)")
	_ = s.srv.Close()
}
func (s *Service) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout+10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// Drained reports whether the service has fully stopped.
func (s *Service) Drained() <-chan struct{} { return s.drained }

// counter returns a registry counter handle (nil-safe when telemetry
// is disabled).
func (s *Service) counter(name string) *telemetry.Counter {
	return s.cfg.Telemetry.Registry().Counter(name)
}

// historyLoop samples the metrics exposition into the history ring at
// HistoryEvery (one immediate sample so even a short-lived service has
// history) and checks the optional p99-breach incident trigger.
func (s *Service) historyLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.HistoryEvery)
	defer t.Stop()
	s.history.Record(time.Now(), s.metricsSnapshot())
	for {
		select {
		case <-t.C:
			s.history.Record(time.Now(), s.metricsSnapshot())
			if lim := s.cfg.IncidentP99MS; lim > 0 {
				if p99 := s.hLatency.Snapshot().Summary.P99; p99 > lim {
					s.recorder.Trigger("p99.breach",
						fmt.Sprintf("service.request.latency.ms p99 %.1f > %.1f", p99, lim))
				}
			}
		case <-s.stopCh:
			return
		}
	}
}

// checkpointLoop periodically persists the service counters.
func (s *Service) checkpointLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CheckpointEvery)
			if err := s.writeCheckpoint(ctx); err != nil {
				s.cfg.Logf("service: periodic checkpoint: %v", err)
			}
			cancel()
		case <-s.stopCh:
			return
		}
	}
}

// serviceState is the gob mirror of the persisted counters.
type serviceState struct {
	Admitted, Completed, Shed, Rejected uint64
	Failed, TimedOut                    uint64
	Panics, Restarts, Wedged            uint64
	BreakerTrips                        map[string]uint64
}

// writeCheckpoint persists the counters through the retrying atomic
// writer; injected checkpoint faults (Chaos.CheckpointFailures) are
// ridden out by the retry policy and surface in the retry counters.
func (s *Service) writeCheckpoint(ctx context.Context) error {
	// Aggregate-only attribution: the periodic persist runs outside any
	// request span, so charge it as a named phase instead.
	defer s.cfg.Telemetry.StartAllocPhase("service.checkpoint").End()
	b := checkpoint.NewBuilder()
	st := serviceState{
		Admitted:     s.stats.admitted.Load(),
		Completed:    s.stats.completed.Load(),
		Shed:         s.stats.shed.Load(),
		Rejected:     s.stats.rejected.Load(),
		Failed:       s.stats.failed.Load(),
		TimedOut:     s.stats.timedOut.Load(),
		Panics:       s.stats.panics.Load(),
		Restarts:     s.stats.restarts.Load(),
		Wedged:       s.stats.wedged.Load(),
		BreakerTrips: map[string]uint64{},
	}
	for name, br := range s.breakers {
		st.BreakerTrips[name] = br.Trips()
	}
	if err := b.Add("service", func(w io.Writer) error { return writeGob(w, st) }); err != nil {
		return err
	}
	pol := checkpoint.DefaultWriteRetry()
	pol.Budget = s.budget
	pol.OnRetry = func(attempt int, d time.Duration, err error) {
		s.stats.ckpRetries.Add(1)
		s.counter("service.checkpoint.retries").Inc()
		s.cfg.Logf("service: checkpoint write attempt %d failed (%v); retrying in %s", attempt, err, d)
	}
	var wrap func(io.Writer) io.Writer
	if s.cfg.Chaos != nil {
		wrap = s.cfg.Chaos.wrapCheckpointWriter
	}
	err := b.WriteFileRetry(ctx, s.cfg.CheckpointPath, pol, wrap)
	if err != nil {
		s.stats.ckpFailures.Add(1)
		s.counter("service.checkpoint.failures").Inc()
		return err
	}
	s.stats.ckpWrites.Add(1)
	s.counter("service.checkpoint.writes").Inc()
	return nil
}

// loadCheckpoint restores persisted counters at startup (Resume).
func (s *Service) loadCheckpoint() error {
	f, err := checkpoint.ReadFile(s.cfg.CheckpointPath)
	if err != nil {
		return fmt.Errorf("service: resume: %w", err)
	}
	var st serviceState
	if err := f.Load("service", func(r io.Reader) error { return readGob(r, &st) }); err != nil {
		return fmt.Errorf("service: resume: %w", err)
	}
	s.stats.admitted.Store(st.Admitted)
	s.stats.completed.Store(st.Completed)
	s.stats.shed.Store(st.Shed)
	s.stats.rejected.Store(st.Rejected)
	s.stats.failed.Store(st.Failed)
	s.stats.timedOut.Store(st.TimedOut)
	s.stats.panics.Store(st.Panics)
	s.stats.restarts.Store(st.Restarts)
	s.stats.wedged.Store(st.Wedged)
	// Breakers restart closed: the masking signal re-learns the state
	// of the world faster than a stale open/half-open snapshot would.
	return nil
}
