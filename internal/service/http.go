package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"resemble/internal/cas"
	"resemble/internal/resilience"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// Request is one simulation job submitted to POST /v1/run.
type Request struct {
	// Workload is a suite workload name (see trace.Names()).
	Workload string `json:"workload"`
	// Controller selects the prefetch source: an ensemble controller
	// ("resemble", "resemble-t", "sbp-e"), a solo arm ("bo", "spp",
	// "isb", "domino"), or "none" for the no-prefetch baseline.
	Controller string `json:"controller"`
	// Accesses is the trace length (0 = the service default).
	Accesses int `json:"accesses,omitempty"`
	// Seed offsets the workload's trace seed and the controller seed.
	Seed int64 `json:"seed,omitempty"`
	// FixedFrac, when non-zero, makes DQN controllers serve action
	// selection from a 16-bit fixed-point model snapshot with this many
	// fractional bits (1..14); 0 keeps float64 serving. Ignored by
	// non-DQN controllers.
	FixedFrac uint `json:"fixed_frac,omitempty"`
	// ReturnWindows asks for the run's telemetry window snapshots in
	// the response, so a coordinator in another process can merge them
	// in its own admission order (the cluster determinism contract).
	// Requires the service to run with a telemetry collector; without
	// one the response simply carries no windows.
	ReturnWindows bool `json:"return_windows,omitempty"`
	// ReturnSpans asks for the request's finished span records in the
	// response — the request→admission→worker→sim tree — so a
	// coordinator can stitch them into its own trace (it sends the
	// parent context in the X-Resemble-Trace-Parent header, see
	// telemetry.TraceParentHeader). Mirrors ReturnWindows: without a
	// telemetry collector the response simply carries no spans.
	ReturnSpans bool `json:"return_spans,omitempty"`
	// ResumeFrom, when non-empty, is the hex ID of a run checkpoint in
	// the service's artifact store to warm-start from. The checkpoint
	// must belong to this exact run (the scope hash is verified on
	// restore); an unusable snapshot — missing, corrupt, or for a
	// different run — degrades to a scratch run, never a wrong one,
	// and the response's resumed_from stays empty. Requires
	// Config.Store; rejected with 400 otherwise.
	ResumeFrom string `json:"resume_from,omitempty"`
}

// Response is the outcome of one simulation request.
type Response struct {
	Workload          string  `json:"workload,omitempty"`
	Controller        string  `json:"controller,omitempty"`
	Accesses          int     `json:"accesses,omitempty"`
	Seed              int64   `json:"seed"`
	IPC               float64 `json:"ipc,omitempty"`
	MPKI              float64 `json:"mpki,omitempty"`
	Accuracy          float64 `json:"accuracy,omitempty"`
	Coverage          float64 `json:"coverage,omitempty"`
	Instructions      uint64  `json:"instructions,omitempty"`
	LLCMisses         uint64  `json:"llc_misses,omitempty"`
	PrefetchesIssued  uint64  `json:"prefetches_issued,omitempty"`
	UsefulPrefetches  uint64  `json:"useful_prefetches,omitempty"`
	DroppedPrefetches uint64  `json:"dropped_prefetches,omitempty"`
	// ExcludedArms lists ensemble arms left out because their circuit
	// breakers were open at admission.
	ExcludedArms []string `json:"excluded_arms,omitempty"`
	// MaskedArms lists arms the controller's accuracy masking had
	// quarantined when the run ended.
	MaskedArms []string `json:"masked_arms,omitempty"`
	DurationMS float64  `json:"duration_ms,omitempty"`
	Error      string   `json:"error,omitempty"`
	// Windows carries the run's telemetry window snapshots when the
	// request set ReturnWindows (and telemetry is enabled) — exactly
	// the stream the run's child collector committed, in order.
	Windows []telemetry.WindowSnapshot `json:"windows,omitempty"`
	// Spans carries the request's finished span records when the
	// request set ReturnSpans (and telemetry is enabled): the run's
	// spans from the isolated child collector followed by the
	// service-level admission/worker/request spans. Timestamps are on
	// this process's timeline; the adopter re-anchors them
	// (telemetry.AnchorSpans).
	Spans []telemetry.SpanRecord `json:"spans,omitempty"`
	// CheckpointID is the store ID of the last durable checkpoint the
	// run wrote (empty when no store is attached or no boundary was
	// reached). A completed run releases its checkpoints for GC, so
	// the ID documents that checkpointing happened rather than
	// promising the blob is still resolvable.
	CheckpointID string `json:"checkpoint_id,omitempty"`
	// ResumedFrom echoes resume_from when the run actually warm-started
	// from that checkpoint; empty means the run executed from scratch.
	ResumedFrom string `json:"resumed_from,omitempty"`
}

// retryAfter is the Retry-After hint attached to every 503.
const retryAfter = "1"

// Handler returns the service's HTTP API:
//
//	POST /v1/run          submit a simulation, wait for its result
//	GET  /v1/explain      recent sampled RL decision records
//	GET  /healthz         liveness (200 while the process serves HTTP)
//	GET  /readyz          readiness (503 while saturated or draining)
//	GET  /metrics         OpenMetrics/Prometheus text exposition
//	GET  /metrics.json    telemetry registry snapshot + service counters
//	GET  /metrics/history periodic registry samples (fixed-size ring)
//	GET  /stats           service counters only
//	POST /drain           begin graceful shutdown (202)
//
// Incident flight recorder (empty results when telemetry is off):
//
//	GET  /debug/incidents          retained incident bundles
//	POST /debug/incidents/capture  snapshot an incident bundle now
//	GET  /debug/flightrec          raw ring snapshot (no incident) —
//	                               what a front door pulls when it
//	                               assembles a fleet bundle
//
// When the capture manager is configured (Config.Profile.Dir):
//
//	POST /debug/profile/capture   take a CPU+heap capture now
//	GET  /debug/profile/captures  list the retained capture manifests
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /drain", s.handleDrain)
	mux.HandleFunc("GET /debug/incidents", s.handleIncidents)
	mux.HandleFunc("POST /debug/incidents/capture", s.handleIncidentCapture)
	mux.HandleFunc("GET /debug/flightrec", s.handleFlightRec)
	if s.profiles != nil {
		mux.HandleFunc("POST /debug/profile/capture", s.handleProfileCapture)
		mux.HandleFunc("GET /debug/profile/captures", s.handleProfileList)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful to do on error
}

// unavailable answers 503 with the shedding contract's Retry-After.
func unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfter)
	writeJSON(w, http.StatusServiceUnavailable, Response{Error: msg})
}

// handleRun validates, admits and awaits one simulation request.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Workload == "" || req.Controller == "" {
		writeJSON(w, http.StatusBadRequest, Response{Error: "workload and controller are required"})
		return
	}
	if _, err := trace.Lookup(req.Workload); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	if !validController(req.Controller) {
		writeJSON(w, http.StatusBadRequest,
			Response{Error: fmt.Sprintf("unknown controller %q (want one of %v)", req.Controller, Controllers())})
		return
	}
	if req.Accesses == 0 {
		req.Accesses = s.cfg.DefaultAccesses
	}
	if req.Accesses < 0 || req.Accesses > s.cfg.MaxAccesses {
		writeJSON(w, http.StatusBadRequest,
			Response{Error: fmt.Sprintf("accesses %d out of range [1,%d]", req.Accesses, s.cfg.MaxAccesses)})
		return
	}
	if req.FixedFrac > 14 {
		writeJSON(w, http.StatusBadRequest,
			Response{Error: fmt.Sprintf("fixed_frac %d out of range [0,14]", req.FixedFrac)})
		return
	}
	if req.ResumeFrom != "" {
		if s.cfg.Store == nil {
			writeJSON(w, http.StatusBadRequest,
				Response{Error: "resume_from requires an artifact store (service has none attached)"})
			return
		}
		if _, err := cas.ParseID(req.ResumeFrom); err != nil {
			writeJSON(w, http.StatusBadRequest,
				Response{Error: "bad resume_from: " + err.Error()})
			return
		}
	}

	// A coordinator propagating its trace context parents this
	// request's span tree under its own attempt span; a missing or
	// malformed header degrades to a locally rooted tree.
	ref, _ := telemetry.ParseSpanRef(r.Header.Get(telemetry.TraceParentHeader))
	t, err := s.admit(r.Context(), req, ref)
	if err != nil {
		s.counter("service.requests.shed").Inc()
		unavailable(w, err.Error())
		return
	}
	select {
	case <-t.done:
		if t.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfter)
		}
		writeJSON(w, t.status, t.resp)
	case <-r.Context().Done():
		// Client gave up; cancel the task (the worker will observe the
		// interrupt and wind down) but keep the connection contract.
		t.cancel()
		writeJSON(w, http.StatusGatewayTimeout, Response{Error: "client cancelled"})
	}
}

// admit sequences the request into the bounded queue under the
// admission lock, so queue FIFO order and telemetry commit order
// agree. Shedding and draining surface as errors for the 503 path.
// A non-zero ref (inbound trace context) parents the request span
// under the coordinator's attempt span instead of a local root.
func (s *Service) admit(parent context.Context, req Request, ref telemetry.SpanRef) (*task, error) {
	ctx, cancel := context.WithTimeout(parent, s.cfg.RequestTimeout)
	t := &task{req: req, ctx: ctx, cancel: cancel, done: make(chan struct{})}

	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.State() != Ready {
		cancel()
		s.stats.rejected.Add(1)
		return nil, errors.New("service is draining")
	}
	t.seq = s.nextSeq
	// The request span roots the task's trace tree; admission itself is
	// its first child. Both must exist before Offer publishes the task:
	// a worker may dequeue it immediately, and the queue handoff is the
	// only happens-before edge it gets. Created under admitMu, so span
	// ordinals follow admission order. On shed the spans are never
	// ended, so nothing is recorded for requests that were never run.
	// Under an inbound trace context the span ID derives from the
	// coordinator's (globally unique) attempt ID rather than the local
	// admission ordinal, so the stitched identity is independent of
	// this backend's worker count and admission history.
	if ref.ID != 0 {
		t.span = s.cfg.Telemetry.StartSpanUnder(ref, "request")
	} else {
		t.span = s.cfg.Telemetry.StartSpan(fmt.Sprintf("req:%04d", t.seq), "request")
	}
	t.admitSpan = t.span.Child("admission")
	if err := s.queue.Offer(t); err != nil {
		cancel()
		if errors.Is(err, resilience.ErrShed) {
			s.stats.shed.Add(1)
			// The recorder snapshot is taken under admitMu; the rate
			// limit keeps a shed storm to one capture per interval.
			s.recorder.Trigger("shed.burst",
				fmt.Sprintf("queue full (%d deep)", s.queue.Capacity()))
			return nil, fmt.Errorf("queue full (%d deep): request shed", s.queue.Capacity())
		}
		s.stats.rejected.Add(1)
		return nil, err
	}
	s.nextSeq++
	s.stats.admitted.Add(1)
	s.counter("service.requests.admitted").Inc()
	t.admitSpan.End()
	return t, nil
}

func validController(name string) bool {
	for _, c := range Controllers() {
		if c == name {
			return true
		}
	}
	return false
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It stays 200 through draining — liveness is not readiness.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "state": s.State().String()})
}

// Readiness reasons reported by /readyz 503s. The cluster front
// door's health prober branches on them: "draining" means the backend
// is leaving on purpose (route away, don't alarm), "overloaded" means
// it is alive but saturated (route away, expect it back).
const (
	ReadyReasonDraining   = "draining"
	ReadyReasonOverloaded = "overloaded"
	ReadyReasonStarting   = "starting"
)

// notReady answers a readiness 503 with a machine-readable reason.
// Every 503 the service emits carries Retry-After — readiness
// included, not just the shed path — so clients and coordinators get
// one uniform backpressure contract.
func notReady(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", retryAfter)
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status": "unavailable",
		"reason": reason,
	})
}

// handleReadyz is the readiness probe: 200 only while the service is
// admitting and the queue has headroom. Load balancers stop routing
// here first, before the queue starts shedding. The 503 body carries
// a distinct reason ("draining" vs "overloaded") so a coordinator can
// tell a deliberate departure from transient saturation.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	state := s.State()
	switch {
	case state == Starting:
		notReady(w, ReadyReasonStarting)
	case state != Ready:
		notReady(w, ReadyReasonDraining)
	case s.queue.Saturated():
		notReady(w, ReadyReasonOverloaded)
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ok",
			"queue_depth": s.queue.Depth(),
			"queue_cap":   s.queue.Capacity(),
		})
	}
}

// handleMetrics serves the OpenMetrics/Prometheus text exposition:
// registry instruments plus the service's own counters, queue and
// breaker gauges, retry-budget level and runtime health gauges. The
// per-arm breaker instruments fold into labeled families
// (service_breaker_state{arm="bo"}).
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metricsSnapshot()
	w.Header().Set("Content-Type", telemetry.PromContentType)
	_ = telemetry.WritePrometheus(w, snap,
		telemetry.LabelRule{Prefix: "service.breaker.state", Label: "arm"},
		telemetry.LabelRule{Prefix: "service.breaker.trips", Label: "arm"},
		telemetry.LabelRule{Prefix: "phase.allocs.count", Label: "phase"},
		telemetry.LabelRule{Prefix: "phase.allocs.bytes", Label: "phase"},
		telemetry.LabelRule{Prefix: "phase.allocs.objects", Label: "phase"})
}

// handleProfileCapture takes an on-demand capture. ?cpu_ms= overrides
// the CPU window (0 skips it); the heap snapshot is always taken.
func (s *Service) handleProfileCapture(w http.ResponseWriter, r *http.Request) {
	cpuDur := time.Duration(-1) // configured default
	if q := r.URL.Query().Get("cpu_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, Response{Error: "cpu_ms must be a non-negative integer"})
			return
		}
		cpuDur = time.Duration(ms) * time.Millisecond
	}
	p99 := s.hLatency.Snapshot().Summary.P99
	info, err := s.profiles.Capture("manual: POST /debug/profile/capture", cpuDur, p99, 0)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, Response{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleProfileList returns the retained capture manifests.
func (s *Service) handleProfileList(w http.ResponseWriter, _ *http.Request) {
	list := s.profiles.List()
	if list == nil {
		list = []CaptureInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "captures": list})
}

// handleMetricsJSON dumps the telemetry registry snapshot (when
// telemetry is enabled) plus the service counters — the JSON view
// that used to live at /metrics.
func (s *Service) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{"service": s.Stats()}
	if reg := s.cfg.Telemetry.Registry(); reg != nil {
		out["registry"] = reg.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExplain returns the most recent sampled RL decision records
// (?n= bounds the count, default 50, max 1000). Empty when telemetry
// or explain sampling is disabled.
func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, Response{Error: "n must be a positive integer"})
			return
		}
		n = min(v, 1000)
	}
	ds := s.cfg.Telemetry.Decisions()
	if len(ds) > n {
		ds = ds[len(ds)-n:]
	}
	if ds == nil {
		ds = []telemetry.Decision{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_rate": s.cfg.Telemetry.ExplainSample(),
		"count":       len(ds),
		"decisions":   ds,
	})
}

// handleMetricsHistory serves the periodic registry sample ring
// (empty when telemetry is off): enough to reconstruct the minute of
// fleet metrics before an incident without external scrape
// infrastructure.
func (s *Service) handleMetricsHistory(w http.ResponseWriter, _ *http.Request) {
	samples := s.history.Samples()
	if samples == nil {
		samples = []telemetry.HistorySample{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"period_ms": s.cfg.HistoryEvery.Milliseconds(),
		"capacity":  s.history.Cap(),
		"count":     len(samples),
		"samples":   samples,
	})
}

// handleIncidents returns the retained incident bundles, oldest first.
func (s *Service) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	incs := s.recorder.Incidents()
	if incs == nil {
		incs = []telemetry.Incident{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(incs), "incidents": incs})
}

// handleIncidentCapture snapshots an incident bundle on demand,
// bypassing the automatic-trigger rate limit.
func (s *Service) handleIncidentCapture(w http.ResponseWriter, _ *http.Request) {
	if s.recorder == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			Response{Error: "flight recorder disabled (service has no telemetry collector)"})
		return
	}
	writeJSON(w, http.StatusOK, s.recorder.Capture("manual: POST /debug/incidents/capture", ""))
}

// handleFlightRec serves the raw ring snapshot without capturing an
// incident — the per-backend payload a front door pulls when it
// assembles a fleet bundle.
func (s *Service) handleFlightRec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.recorder.Snapshot())
}

// handleStats dumps the service counters.
func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleDrain starts a graceful drain in the background and returns
// immediately; poll /healthz for state=stopped.
func (s *Service) handleDrain(w http.ResponseWriter, _ *http.Request) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout+10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}
