package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"resemble/internal/cas"
	"resemble/internal/checkpoint"
	"resemble/internal/telemetry"
)

func testStore(t *testing.T) *cas.Store {
	t.Helper()
	s, rep, err := cas.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store sweep: %v", rep)
	}
	return s
}

// postCancellable fires one request whose context the caller controls;
// the 504 "client cancelled" answer (or the connection error when the
// context fires first) is discarded — the caller only cares that the
// worker observed the interrupt.
func postCancellable(ctx context.Context, s *Service, req Request) {
	body, _ := json.Marshal(req)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(hr)
	if err == nil {
		resp.Body.Close()
	}
}

// waitStat polls a service counter until it reaches want (or 10s pass).
func waitStat(t *testing.T, label string, want uint64, get func() uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (at %d)", label, want, get())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunCheckpointAndResume is the service-level acceptance test for
// durable warm starts: a run interrupted mid-flight leaves a tagged
// checkpoint in the store; re-submitting the identical request with
// resume_from produces a 200 whose result and window stream are
// byte-identical to an uninterrupted run, and the completed run
// releases its checkpoints from the store.
func TestRunCheckpointAndResume(t *testing.T) {
	store := testStore(t)
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startService(t, func(c *Config) {
		c.Store = store
		c.RunCheckpointEvery = 1024
		c.Telemetry = tel
	})
	req := Request{Workload: "433.milc", Controller: "bo", Accesses: 150000, Seed: 3, ReturnWindows: true}
	key := RunKey(req)

	// Interrupt the first attempt once at least two periodic checkpoints
	// are durable (so the resume point is mid-run, not at zero).
	ctx, cancel := context.WithCancel(context.Background())
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		postCancellable(ctx, s, req)
	}()
	waitStat(t, "run checkpoint writes", 2, func() uint64 { return s.Stats().RunCkpWrites })
	cancel()
	<-clientDone
	// The worker writes the final interrupt checkpoint before the run
	// returns, so once the timeout is accounted the tag is durable.
	waitStat(t, "timed out runs", 1, func() uint64 { return s.Stats().TimedOut })

	id, ok := store.Resolve(CheckpointLatestTag(key))
	if !ok {
		t.Fatalf("interrupted run left no %s tag", CheckpointLatestTag(key))
	}

	// Resume on the same engine; a warm start must report itself.
	resumeReq := req
	resumeReq.ResumeFrom = id.String()
	status, got := post(t, s, resumeReq)
	if status != http.StatusOK {
		t.Fatalf("resumed run: status %d (%s)", status, got.Error)
	}
	if got.ResumedFrom != id.String() {
		t.Fatalf("resumed run reports resumed_from %q, want %q", got.ResumedFrom, id)
	}
	if st := s.Stats(); st.Resumes != 1 || st.ResumeFallbacks != 0 {
		t.Fatalf("stats after resume = %+v", st)
	}
	// Completion released the run's checkpoints.
	if tags := store.Tags(CheckpointTagPrefix(key)); len(tags) != 0 {
		t.Fatalf("completed run left checkpoint tags %v", tags)
	}

	// Reference: the identical request, uninterrupted, on a storeless
	// service — the durability layer must not perturb a single byte.
	refTel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := startService(t, func(c *Config) { c.Telemetry = refTel })
	status, want := post(t, ref, req)
	if status != http.StatusOK {
		t.Fatalf("reference run: status %d (%s)", status, want.Error)
	}

	got.DurationMS, want.DurationMS = 0, 0
	got.CheckpointID, got.ResumedFrom = "", ""
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed response differs from uninterrupted reference:\nwant %+v\ngot  %+v", want, got)
	}
	wj, _ := json.Marshal(want.Windows)
	gj, _ := json.Marshal(got.Windows)
	if len(want.Windows) == 0 || !bytes.Equal(wj, gj) {
		t.Errorf("resumed window stream differs from uninterrupted reference (%d vs %d windows)",
			len(got.Windows), len(want.Windows))
	}
}

// TestResumeFallsBackToScratch pins the degraded path: an unusable
// resume_from (absent blob, or a blob that is not this run's
// checkpoint) yields a correct scratch run, counted as a fallback and
// reported as not-resumed.
func TestResumeFallsBackToScratch(t *testing.T) {
	store := testStore(t)
	s := startService(t, func(c *Config) { c.Store = store; c.RunCheckpointEvery = 1024 })
	req := Request{Workload: "433.milc", Controller: "bo", Accesses: 3000}

	t.Run("absent blob", func(t *testing.T) {
		r := req
		r.ResumeFrom = strings.Repeat("ab", 32) // well-formed, not in the store
		status, resp := post(t, s, r)
		if status != http.StatusOK || resp.Error != "" {
			t.Fatalf("status %d (%s)", status, resp.Error)
		}
		if resp.ResumedFrom != "" {
			t.Fatalf("scratch fallback claimed resumed_from %q", resp.ResumedFrom)
		}
		if st := s.Stats(); st.ResumeFallbacks != 1 {
			t.Fatalf("stats = %+v, want 1 resume fallback", st)
		}
	})
	t.Run("blob that is not a usable checkpoint", func(t *testing.T) {
		id, err := store.Put(cas.KindCheckpoint, []byte("garbage, hashed faithfully"))
		if err != nil {
			t.Fatal(err)
		}
		r := req
		r.ResumeFrom = id.String()
		status, resp := post(t, s, r)
		if status != http.StatusOK || resp.Error != "" {
			t.Fatalf("status %d (%s)", status, resp.Error)
		}
		if resp.ResumedFrom != "" {
			t.Fatalf("scratch fallback claimed resumed_from %q", resp.ResumedFrom)
		}
		if st := s.Stats(); st.ResumeFallbacks != 2 {
			t.Fatalf("stats = %+v, want 2 resume fallbacks", st)
		}
	})
}

// TestResumeValidation: resume_from is rejected up front when it can
// never work — no store attached, or a malformed ID.
func TestResumeValidation(t *testing.T) {
	t.Run("no store", func(t *testing.T) {
		s := startService(t, nil)
		status, resp := post(t, s, Request{
			Workload: "433.milc", Controller: "bo", Accesses: 500,
			ResumeFrom: strings.Repeat("ab", 32),
		})
		if status != http.StatusBadRequest || !strings.Contains(resp.Error, "artifact store") {
			t.Fatalf("status %d (%s), want 400 naming the missing store", status, resp.Error)
		}
	})
	t.Run("malformed id", func(t *testing.T) {
		s := startService(t, func(c *Config) { c.Store = testStore(t) })
		status, resp := post(t, s, Request{
			Workload: "433.milc", Controller: "bo", Accesses: 500,
			ResumeFrom: "not-a-hash",
		})
		if status != http.StatusBadRequest || !strings.Contains(resp.Error, "resume_from") {
			t.Fatalf("status %d (%s), want 400 naming resume_from", status, resp.Error)
		}
	})
}

// TestAbortDuringCheckpointWritesLeavesNoTornState races Abort()
// against in-flight periodic checkpoint writes — both the service
// counter checkpoint and the per-run store checkpoints. Abort severs
// the HTTP front mid-write from the clients' point of view, but every
// durable write is atomic (temp + rename): after the drain no torn
// temp file may survive anywhere, the counter checkpoint must parse
// clean, and a fresh store open's recovery sweep must report clean.
func TestAbortDuringCheckpointWritesLeavesNoTornState(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckpPath := filepath.Join(dir, "service.ckpt")
	store, rep, err := cas.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store sweep: %v", rep)
	}
	s := startService(t, func(c *Config) {
		c.Store = store
		c.RunCheckpointEvery = 512
		c.CheckpointPath = ckpPath
		c.CheckpointEvery = 5 * time.Millisecond
	})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Losing the connection to the abort is the point; the engine
			// finishes the runs regardless.
			postCancellable(context.Background(), s, Request{
				Workload: "433.milc", Controller: "bo", Accesses: 20000, Seed: seed,
			})
		}(int64(i))
	}
	// Sever the front only once checkpoints of both kinds are in flight.
	waitStat(t, "run checkpoint writes", 2, func() uint64 { return s.Stats().RunCkpWrites })
	waitStat(t, "service checkpoint writes", 1, func() uint64 { return s.Stats().CkpWrites })
	s.Abort()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("drain after abort: %v", err)
	}

	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("torn temp file survived: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.ReadFile(ckpPath); err != nil {
		t.Errorf("service checkpoint did not survive the abort intact: %v", err)
	}
	if _, rep, err := cas.Open(storeDir); err != nil || !rep.Clean() {
		t.Errorf("store recovery sweep after abort: report %v, err %v", rep, err)
	}
}
