package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/trace"
)

// nextLine suggests the line after the accessed one — a trivially
// correct prefetcher for sequential streams, with deterministic state.
type nextLine struct {
	n int
}

func (p *nextLine) Name() string  { return "nextline" }
func (p *nextLine) Spatial() bool { return true }
func (p *nextLine) Reset()        { p.n = 0 }
func (p *nextLine) Observe(a prefetch.AccessContext) []prefetch.Suggestion {
	p.n++
	return []prefetch.Suggestion{{Line: a.Line + 1, Confidence: 1}}
}

func (p *nextLine) SaveState(w io.Writer) error { return writeGob(w, p.n) }
func (p *nextLine) LoadState(r io.Reader) error { return readGob(r, &p.n) }

func access(i int) prefetch.AccessContext {
	return prefetch.AccessContext{Index: i, Line: mem.Line(100 + i)}
}

func collect(f *Prefetcher, n int) [][]prefetch.Suggestion {
	out := make([][]prefetch.Suggestion, n)
	for i := 0; i < n; i++ {
		sugs := f.Observe(access(i))
		out[i] = append([]prefetch.Suggestion(nil), sugs...)
	}
	return out
}

func TestFaultModes(t *testing.T) {
	t.Run("silent", func(t *testing.T) {
		f := Wrap(&nextLine{}, Config{Mode: Silent, Start: 3})
		got := collect(f, 10)
		for i := 0; i < 3; i++ {
			if len(got[i]) != 1 || got[i][0].Line != mem.Line(101+i) {
				t.Fatalf("access %d before Start altered: %v", i, got[i])
			}
		}
		for i := 3; i < 10; i++ {
			if len(got[i]) != 0 {
				t.Fatalf("silent fault leaked suggestions at %d: %v", i, got[i])
			}
		}
		if f.Injected() != 7 {
			t.Fatalf("injected = %d, want 7", f.Injected())
		}
	})

	t.Run("stuck", func(t *testing.T) {
		f := Wrap(&nextLine{}, Config{Mode: Stuck})
		got := collect(f, 10)
		// First suggestion is latched before the fault engages output 0;
		// with Start=0 the fault is active from access index 1 on.
		if got[0] == nil {
			t.Fatal("no healthy output to latch")
		}
		want := got[1][0].Line
		for i := 2; i < 10; i++ {
			if len(got[i]) != 1 || got[i][0].Line != want {
				t.Fatalf("stuck output drifted at %d: %v (want line %d)", i, got[i], want)
			}
		}
	})

	t.Run("noisy", func(t *testing.T) {
		f := Wrap(&nextLine{}, Config{Mode: Noisy, Seed: 9, Degree: 3})
		got := collect(f, 10)
		for i := 1; i < 10; i++ {
			if len(got[i]) != 3 {
				t.Fatalf("noisy degree at %d: %d suggestions", i, len(got[i]))
			}
			if got[i][0].Line == mem.Line(101+i) {
				t.Fatalf("noisy output at %d suspiciously equals healthy output", i)
			}
		}
	})

	t.Run("intermittent", func(t *testing.T) {
		f := Wrap(&nextLine{}, Config{Mode: Intermittent, Seed: 9, Period: 4})
		got := collect(f, 16)
		healthy := func(i int) bool {
			return len(got[i]) == 1 && got[i][0].Line == mem.Line(101+i)
		}
		// With Start=0 and Period=4, accesses 1..4 (collect indices
		// 0..3) are the healthy phase, 5..8 broken, 9..12 healthy again.
		for i := 0; i <= 3; i++ {
			if !healthy(i) {
				t.Fatalf("access %d should be in healthy phase: %v", i, got[i])
			}
		}
		for i := 4; i <= 7; i++ {
			if healthy(i) {
				t.Fatalf("access %d should be in broken phase: %v", i, got[i])
			}
		}
		for i := 8; i <= 11; i++ {
			if !healthy(i) {
				t.Fatalf("access %d should be back to healthy: %v", i, got[i])
			}
		}
	})

	t.Run("none", func(t *testing.T) {
		f := Wrap(&nextLine{}, Config{Mode: None})
		got := collect(f, 5)
		for i := range got {
			if len(got[i]) != 1 || got[i][0].Line != mem.Line(101+i) {
				t.Fatalf("transparent wrap altered access %d: %v", i, got[i])
			}
		}
		if f.Injected() != 0 {
			t.Fatalf("injected = %d, want 0", f.Injected())
		}
	})
}

func TestFaultDeterminism(t *testing.T) {
	for _, mode := range Modes() {
		a := Wrap(&nextLine{}, Config{Mode: mode, Seed: 123})
		b := Wrap(&nextLine{}, Config{Mode: mode, Seed: 123})
		ga, gb := collect(a, 500), collect(b, 500)
		for i := range ga {
			if len(ga[i]) != len(gb[i]) {
				t.Fatalf("%v: length diverged at %d", mode, i)
			}
			for j := range ga[i] {
				if ga[i][j] != gb[i][j] {
					t.Fatalf("%v: suggestion diverged at %d/%d", mode, i, j)
				}
			}
		}
		// Reset must reproduce the same stream again.
		a.Reset()
		gr := collect(a, 500)
		for i := range gr {
			for j := range gr[i] {
				if gr[i][j] != gb[i][j] {
					t.Fatalf("%v: post-Reset stream diverged at %d/%d", mode, i, j)
				}
			}
		}
	}
}

func TestFaultInnerKeepsTraining(t *testing.T) {
	inner := &nextLine{}
	f := Wrap(inner, Config{Mode: Silent})
	collect(f, 50)
	if inner.n != 50 {
		t.Fatalf("inner prefetcher observed %d accesses, want 50", inner.n)
	}
}

func TestFaultSaveLoadState(t *testing.T) {
	for _, mode := range Modes() {
		// Uninterrupted reference stream.
		ref := collect(Wrap(&nextLine{}, Config{Mode: mode, Seed: 55}), 300)

		// Snapshot a twin mid-stream, restore into a fresh wrapper and
		// check the continuation matches the uninterrupted reference.
		twin := Wrap(&nextLine{}, Config{Mode: mode, Seed: 55})
		collect(twin, 200)
		var buf bytes.Buffer
		if err := twin.SaveState(&buf); err != nil {
			t.Fatalf("%v: save: %v", mode, err)
		}
		fresh := Wrap(&nextLine{}, Config{Mode: mode, Seed: 55})
		if err := fresh.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%v: load: %v", mode, err)
		}
		for i := 200; i < 300; i++ {
			sugs := fresh.Observe(access(i))
			want := ref[i]
			if len(sugs) != len(want) {
				t.Fatalf("%v: resumed length diverged at %d", mode, i)
			}
			for j := range sugs {
				if sugs[j] != want[j] {
					t.Fatalf("%v: resumed suggestion diverged at %d/%d", mode, i, j)
				}
			}
		}

		if err := fresh.LoadState(bytes.NewReader([]byte{0x01})); err == nil {
			t.Fatalf("%v: truncated state must error", mode)
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range append([]Mode{None}, Modes()...) {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("wedged"); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestCorruptBytes(t *testing.T) {
	data := bytes.Repeat([]byte{0x00}, 256)
	a := CorruptBytes(data, 8, 1)
	b := CorruptBytes(data, 8, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("CorruptBytes not deterministic for equal seeds")
	}
	if bytes.Equal(a, data) {
		t.Fatal("CorruptBytes changed nothing")
	}
	for i := range data {
		if data[i] != 0 {
			t.Fatal("CorruptBytes mutated its input")
		}
	}
	if got := CorruptBytes(nil, 4, 1); len(got) != 0 {
		t.Fatalf("CorruptBytes(nil) = %v", got)
	}
}

func TestCorruptRecords(t *testing.T) {
	tr := &trace.Trace{Name: "t"}
	for i := 0; i < 1000; i++ {
		tr.Append(uint64(0x400000+i%7), uint64(0x1000+64*i), 3)
	}
	out := CorruptRecords(tr, 0.1, 42)
	if out.Len() != tr.Len() {
		t.Fatalf("record count changed: %d != %d", out.Len(), tr.Len())
	}
	changed := 0
	for i := range tr.Records {
		if out.Records[i].ID != tr.Records[i].ID || out.Records[i].Gap != tr.Records[i].Gap {
			t.Fatalf("ID/Gap mutated at %d", i)
		}
		if out.Records[i] != tr.Records[i] {
			changed++
		}
	}
	if changed < 50 || changed > 200 {
		t.Fatalf("corrupted %d of 1000 records at rate 0.1", changed)
	}
	again := CorruptRecords(tr, 0.1, 42)
	for i := range out.Records {
		if out.Records[i] != again.Records[i] {
			t.Fatalf("CorruptRecords not deterministic at %d", i)
		}
	}
	clean := CorruptRecords(tr, 0, 42)
	for i := range clean.Records {
		if clean.Records[i] != tr.Records[i] {
			t.Fatalf("rate 0 mutated record %d", i)
		}
	}
}

func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	wantErr := errors.New("disk full")
	fw := &FailingWriter{W: &buf, FailAfter: 2, Err: wantErr}
	for i := 0; i < 2; i++ {
		if _, err := fw.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := fw.Write([]byte("boom")); !errors.Is(err, wantErr) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if buf.String() != "okok" {
		t.Fatalf("buffer = %q", buf.String())
	}
	fwDefault := &FailingWriter{W: io.Discard}
	if _, err := fwDefault.Write([]byte("x")); err == nil {
		t.Fatal("FailAfter=0 must fail immediately")
	}
}
