package faults

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"resemble/internal/cas"
)

// seedStore opens a fresh store in dir and deposits one tagged blob.
func seedStore(t *testing.T, dir string) (*cas.Store, cas.ID, []byte) {
	t.Helper()
	s, rep, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store sweep: %v", rep)
	}
	payload := bytes.Repeat([]byte("durable artifact payload "), 64)
	id, err := s.PutTagged(cas.KindCheckpoint, payload, "ckp/victim/latest")
	if err != nil {
		t.Fatal(err)
	}
	return s, id, payload
}

func quarantined(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreArmsCorruptBlob covers the two arms that damage the blob
// bytes in place: the corruption must be detected on the very next
// read, the damaged bytes must never be served, and the blob must land
// in quarantine — both when the damage is noticed by a live Get and
// when a fresh open's recovery sweep finds it first.
func TestStoreArmsCorruptBlob(t *testing.T) {
	for _, arm := range []StoreArm{BlobBitFlip, BlobTruncate} {
		t.Run(arm.String(), func(t *testing.T) {
			t.Run("detected on read", func(t *testing.T) {
				dir := t.TempDir()
				s, id, _ := seedStore(t, dir)
				if err := InjectStoreFault(dir, arm, cas.KindCheckpoint, id, 7); err != nil {
					t.Fatal(err)
				}
				data, _, err := s.Get(id)
				if !errors.Is(err, cas.ErrCorrupt) {
					t.Fatalf("Get after %s: err = %v, want ErrCorrupt", arm, err)
				}
				if data != nil {
					t.Fatalf("Get served %d corrupt bytes alongside the error", len(data))
				}
				if q := quarantined(t, dir); len(q) != 1 {
					t.Fatalf("quarantine after corrupt Get: %v, want exactly the damaged blob", q)
				}
				// The store healed itself: a reopen finds nothing left to repair.
				if _, rep, err := cas.Open(dir); err != nil || !rep.Clean() {
					t.Fatalf("reopen after quarantine: report %v, err %v", rep, err)
				}
			})
			t.Run("quarantined by sweep", func(t *testing.T) {
				dir := t.TempDir()
				_, id, _ := seedStore(t, dir)
				if err := InjectStoreFault(dir, arm, cas.KindCheckpoint, id, 7); err != nil {
					t.Fatal(err)
				}
				s2, rep, err := cas.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Corrupt != 1 {
					t.Fatalf("sweep report %v, want 1 corrupt blob", rep)
				}
				if _, _, err := s2.Get(id); !errors.Is(err, cas.ErrNotFound) {
					t.Fatalf("Get of swept-out blob: err = %v, want ErrNotFound", err)
				}
				if q := quarantined(t, dir); len(q) != 1 {
					t.Fatalf("quarantine after sweep: %v", q)
				}
			})
		})
	}
}

// TestStoreArmTornTemp: a temp file left by an interrupted write is
// quarantined by the sweep and the committed blob stays intact.
func TestStoreArmTornTemp(t *testing.T) {
	dir := t.TempDir()
	_, id, payload := seedStore(t, dir)
	if err := InjectStoreFault(dir, TornTempFile, cas.KindCheckpoint, id, 99); err != nil {
		t.Fatal(err)
	}
	s2, rep, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTemps != 1 || rep.Corrupt != 0 {
		t.Fatalf("sweep report %v, want 1 torn temp and nothing else", rep)
	}
	data, kind, err := s2.Get(id)
	if err != nil || kind != cas.KindCheckpoint || !bytes.Equal(data, payload) {
		t.Fatalf("committed blob perturbed by a neighboring torn temp: kind %q err %v", kind, err)
	}
	// The torn file is out of the serving tree, not deleted evidence.
	q := quarantined(t, dir)
	if len(q) != 1 || !strings.Contains(q[0], "torn-temp") {
		t.Fatalf("quarantine = %v, want the torn temp tagged with its reason", q)
	}
	err = filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("torn temp survived the sweep in the serving tree: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStoreArmIndexDrop: a lost index update leaves the blob as an
// orphan; the sweep re-adopts it with its kind and bytes intact (tags
// are gone — they lived only in the index — but content is never lost
// or misserved).
func TestStoreArmIndexDrop(t *testing.T) {
	dir := t.TempDir()
	_, id, payload := seedStore(t, dir)
	if err := InjectStoreFault(dir, IndexEntryDrop, cas.KindCheckpoint, id, 0); err != nil {
		t.Fatal(err)
	}
	s2, rep, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adopted != 1 || rep.IndexRebuilt {
		t.Fatalf("sweep report %v, want 1 adopted orphan from a parseable index", rep)
	}
	data, kind, err := s2.Get(id)
	if err != nil || kind != cas.KindCheckpoint || !bytes.Equal(data, payload) {
		t.Fatalf("re-adopted orphan not served intact: kind %q err %v", kind, err)
	}
	if _, ok := s2.Resolve("ckp/victim/latest"); ok {
		t.Fatal("dropped index entry resurrected its tag")
	}
	// The arm refuses to "drop" an entry that is not there.
	if err := InjectStoreFault(dir, IndexEntryDrop, cas.KindCheckpoint, cas.Sum([]byte("absent")), 0); err == nil {
		t.Fatal("index-drop of an unindexed blob must error")
	}
}

// TestInjectStoreFaultMissingBlob: the blob-damaging arms refuse to
// fabricate a target that does not exist.
func TestInjectStoreFaultMissingBlob(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	ghost := cas.Sum([]byte("never stored"))
	for _, arm := range []StoreArm{BlobBitFlip, BlobTruncate} {
		if err := InjectStoreFault(dir, arm, cas.KindCheckpoint, ghost, 1); err == nil {
			t.Fatalf("%s against a missing blob must error", arm)
		}
	}
}

func TestParseStoreArm(t *testing.T) {
	for _, a := range StoreArms() {
		got, err := ParseStoreArm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseStoreArm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseStoreArm("rm-rf"); err == nil {
		t.Fatal("unknown arm must error")
	}
}
