package faults

import (
	"bytes"
	"encoding/gob"
	"io"
)

// writerBuf is a minimal io.Writer accumulating into a byte slice.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func byteReader(b []byte) io.Reader { return bytes.NewReader(b) }

func writeGob(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }

func readGob(r io.Reader, v any) error { return gob.NewDecoder(r).Decode(v) }
