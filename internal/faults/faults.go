// Package faults implements deterministic fault injection for
// robustness testing: seed-driven wrappers that make any
// prefetch.Prefetcher misbehave in a controlled, reproducible way,
// plus trace-corruption and sink write-error helpers for exercising
// the I/O hardening paths.
//
// The ensemble's pitch is routing around a prefetcher that is wrong
// for the current phase; this package makes it possible to test the
// harder case — a prefetcher that is outright broken — and to measure
// whether the controllers degrade gracefully (see the fault-matrix
// experiment and the masking heuristic in internal/core).
//
// All injected behaviour is a pure function of (Config.Seed, access
// stream): two runs with the same seed inject byte-identical faults,
// so faulty runs stay checkpoint/resume-safe and regression-testable.
package faults

import (
	"fmt"
	"io"
	"math/rand"

	"resemble/internal/checkpoint"
	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// Mode selects the injected failure behaviour.
type Mode int

// Fault taxonomy (see DESIGN.md, Fault tolerance):
//
//   - Stuck: the prefetcher latches the first line it ever suggested
//     and repeats it forever — a wedged state machine.
//   - Silent: the prefetcher stops suggesting anything — a dead unit.
//   - Noisy: the prefetcher emits uniformly random line addresses — a
//     corrupted table streaming garbage.
//   - Intermittent: the prefetcher alternates between healthy phases
//     and noisy phases of Period accesses each — a marginal unit.
const (
	None Mode = iota
	Stuck
	Silent
	Noisy
	Intermittent
)

// Modes lists the injectable fault classes (excluding None).
func Modes() []Mode { return []Mode{Stuck, Silent, Noisy, Intermittent} }

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Stuck:
		return "stuck"
	case Silent:
		return "silent"
	case Noisy:
		return "noisy"
	case Intermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a fault-class name.
func ParseMode(s string) (Mode, error) {
	for _, m := range append([]Mode{None}, Modes()...) {
		if m.String() == s {
			return m, nil
		}
	}
	return None, fmt.Errorf("faults: unknown mode %q (stuck|silent|noisy|intermittent|none)", s)
}

// Config parameterizes one injected fault.
type Config struct {
	// Mode is the fault class; None wraps transparently.
	Mode Mode
	// Seed drives every stochastic choice (noisy addresses). Two
	// injectors with the same seed produce identical faults.
	Seed int64
	// Start is the access index at which the fault first manifests
	// (the prefetcher is healthy before it).
	Start int
	// Period is the phase length of Intermittent faults (default 2048
	// accesses healthy, then 2048 noisy, alternating).
	Period int
	// Degree is the number of random lines a noisy fault emits per
	// access (default 2, matching the solo-prefetcher issue degree).
	Degree int
}

func (c *Config) setDefaults() {
	if c.Period <= 0 {
		c.Period = 2048
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
}

// Prefetcher wraps an inner prefetcher with fault injection. The
// inner prefetcher still observes every access (its tables keep
// training, exactly like real broken hardware that still snoops the
// bus), but its suggestions are replaced according to the fault mode.
// It implements prefetch.Prefetcher, telemetry.Attachable and
// checkpoint.Stater (when the inner prefetcher does).
type Prefetcher struct {
	inner prefetch.Prefetcher
	cfg   Config

	rngSrc *checkpoint.RandSource
	rng    *rand.Rand
	n      int // accesses seen

	stuck     prefetch.Suggestion
	haveStuck bool

	injected uint64 // accesses with altered output
	sugBuf   []prefetch.Suggestion

	cInjected *telemetry.Counter
}

// Wrap builds a fault-injecting wrapper around p.
func Wrap(p prefetch.Prefetcher, cfg Config) *Prefetcher {
	cfg.setDefaults()
	f := &Prefetcher{inner: p, cfg: cfg}
	f.initRNG()
	return f
}

func (f *Prefetcher) initRNG() {
	f.rngSrc = checkpoint.NewRandSource(f.cfg.Seed)
	f.rng = rand.New(f.rngSrc)
}

// Name implements prefetch.Prefetcher: the wrapper keeps the inner
// name so action labels and observation ordering stay comparable
// between faulty and healthy runs.
func (f *Prefetcher) Name() string { return f.inner.Name() }

// Mode returns the injected fault class.
func (f *Prefetcher) Mode() Mode { return f.cfg.Mode }

// Spatial implements prefetch.Prefetcher.
func (f *Prefetcher) Spatial() bool { return f.inner.Spatial() }

// Injected returns the number of accesses whose output was altered.
func (f *Prefetcher) Injected() uint64 { return f.injected }

// Reset implements prefetch.Prefetcher.
func (f *Prefetcher) Reset() {
	f.inner.Reset()
	f.initRNG()
	f.n = 0
	f.haveStuck = false
	f.stuck = prefetch.Suggestion{}
	f.injected = 0
}

// AttachTelemetry implements telemetry.Attachable, surfacing the
// injection count as a registry counter.
func (f *Prefetcher) AttachTelemetry(t *telemetry.Collector) {
	f.cInjected = t.Registry().Counter("faults.injected." + f.cfg.Mode.String() + "." + f.Name())
	if a, ok := f.inner.(telemetry.Attachable); ok {
		a.AttachTelemetry(t)
	}
}

// active reports whether the fault manifests on the current access.
func (f *Prefetcher) active() bool {
	if f.cfg.Mode == None || f.n <= f.cfg.Start {
		return false
	}
	if f.cfg.Mode == Intermittent {
		phase := (f.n - f.cfg.Start - 1) / f.cfg.Period
		return phase%2 == 1 // healthy first, then broken, alternating
	}
	return true
}

// Observe implements prefetch.Prefetcher.
func (f *Prefetcher) Observe(a prefetch.AccessContext) []prefetch.Suggestion {
	f.n++
	sugs := f.inner.Observe(a)
	// Latch the stuck line from the first healthy suggestion so the
	// stuck output is a plausible address, as a wedged unit would emit.
	if !f.haveStuck && len(sugs) > 0 {
		f.stuck = sugs[0]
		f.haveStuck = true
	}
	if !f.active() {
		return sugs
	}
	f.injected++
	f.cInjected.Inc()
	switch f.cfg.Mode {
	case Silent:
		return nil
	case Stuck:
		if !f.haveStuck {
			return nil
		}
		f.sugBuf = append(f.sugBuf[:0], f.stuck)
		return f.sugBuf
	default: // Noisy, Intermittent (broken phase)
		f.sugBuf = f.sugBuf[:0]
		for i := 0; i < f.cfg.Degree; i++ {
			line := mem.Line(f.rng.Intn(1 << 30))
			f.sugBuf = append(f.sugBuf, prefetch.Suggestion{Line: line, Confidence: 1})
		}
		return f.sugBuf
	}
}

// faultState is the gob mirror of the wrapper's own state.
type faultState struct {
	N         int
	Stuck     prefetch.Suggestion
	HaveStuck bool
	Injected  uint64
	RNGSeed   int64
	RNGDraws  uint64
	Inner     []byte
}

// SaveState implements checkpoint.Stater; it requires the inner
// prefetcher to implement it too.
func (f *Prefetcher) SaveState(w io.Writer) error {
	st, ok := f.inner.(checkpoint.Stater)
	if !ok {
		return fmt.Errorf("faults: inner prefetcher %q does not support checkpointing", f.inner.Name())
	}
	var inner writerBuf
	if err := st.SaveState(&inner); err != nil {
		return err
	}
	seed, draws := f.rngSrc.State()
	return writeGob(w, faultState{
		N: f.n, Stuck: f.stuck, HaveStuck: f.haveStuck, Injected: f.injected,
		RNGSeed: seed, RNGDraws: draws, Inner: inner.b,
	})
}

// LoadState implements checkpoint.Stater.
func (f *Prefetcher) LoadState(r io.Reader) error {
	st, ok := f.inner.(checkpoint.Stater)
	if !ok {
		return fmt.Errorf("faults: inner prefetcher %q does not support checkpointing", f.inner.Name())
	}
	var s faultState
	if err := readGob(r, &s); err != nil {
		return err
	}
	if err := st.LoadState(byteReader(s.Inner)); err != nil {
		return err
	}
	f.n = s.N
	f.stuck = s.Stuck
	f.haveStuck = s.HaveStuck
	f.injected = s.Injected
	f.rngSrc.Restore(s.RNGSeed, s.RNGDraws)
	f.rng = rand.New(f.rngSrc)
	return nil
}

// CorruptBytes returns a copy of data with flips single-bit flips at
// seed-determined positions — used to exercise binary-format
// hardening (trace files, model snapshots, checkpoints).
func CorruptBytes(data []byte, flips int, seed int64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < flips; i++ {
		out[rng.Intn(len(out))] ^= 1 << rng.Intn(8)
	}
	return out
}

// FailingWriter wraps an io.Writer and starts returning Err after
// FailAfter successful Write calls — used to verify that telemetry
// sinks surface (or deliberately swallow) write errors without
// aborting a simulation.
type FailingWriter struct {
	W         io.Writer
	FailAfter int
	Err       error

	writes int
}

// Write implements io.Writer.
func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.writes >= f.FailAfter {
		err := f.Err
		if err == nil {
			err = fmt.Errorf("faults: injected write error")
		}
		return 0, err
	}
	f.writes++
	return f.W.Write(p)
}

// CorruptRecords returns a copy of tr in which a seed-determined
// fraction rate of the records have their PC and Addr fields XOR-mixed
// with random bits — simulating in-memory trace corruption without
// breaking the file format. IDs and Gaps are preserved so the timing
// model stays consistent.
func CorruptRecords(tr *trace.Trace, rate float64, seed int64) *trace.Trace {
	out := &trace.Trace{Name: tr.Name + ".corrupt"}
	out.Records = append([]trace.Record(nil), tr.Records...)
	if rate <= 0 || len(out.Records) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out.Records {
		if rng.Float64() >= rate {
			continue
		}
		out.Records[i].PC ^= rng.Uint64()
		out.Records[i].Addr ^= mem.Addr(rng.Uint64())
	}
	return out
}
