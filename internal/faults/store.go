package faults

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"resemble/internal/cas"
)

// StoreArm selects one artifact-store corruption: a way the bytes
// under a cas.Store can rot while the process is away. Each arm
// mirrors a real failure (cosmic-ray bit flip, out-of-space truncation,
// power loss mid-write, lost index update); the store's contract is
// that every one of them is detected on read, never served, and
// quarantined or repaired by the recovery sweep.
type StoreArm int

const (
	// BlobBitFlip flips a single seed-determined bit inside a blob
	// file, leaving its size and name intact.
	BlobBitFlip StoreArm = iota
	// BlobTruncate cuts a blob file to half its length — a partial
	// write the rename-based protocol itself can never produce, as
	// from media failure.
	BlobTruncate
	// TornTempFile plants a *.tmp* file beside the blob, as a write
	// interrupted by SIGKILL between CreateTemp and rename leaves.
	TornTempFile
	// IndexEntryDrop rewrites the index without the blob's entry (and
	// without tags naming it), with a valid CRC — the blob file
	// survives as an orphan the sweep must re-adopt.
	IndexEntryDrop
)

// StoreArms lists the injectable store corruptions.
func StoreArms() []StoreArm {
	return []StoreArm{BlobBitFlip, BlobTruncate, TornTempFile, IndexEntryDrop}
}

func (a StoreArm) String() string {
	switch a {
	case BlobBitFlip:
		return "blob-bitflip"
	case BlobTruncate:
		return "blob-truncate"
	case TornTempFile:
		return "torn-temp"
	case IndexEntryDrop:
		return "index-drop"
	default:
		return fmt.Sprintf("storearm(%d)", int(a))
	}
}

// ParseStoreArm parses a store-corruption arm name.
func ParseStoreArm(s string) (StoreArm, error) {
	for _, a := range StoreArms() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown store arm %q (blob-bitflip|blob-truncate|torn-temp|index-drop)", s)
}

// blobFile returns the store's path for a blob, pinning the layout
// documented in package cas (blobs/<kind>/<first two hex>/<hex64>).
func blobFile(dir string, kind cas.Kind, id cas.ID) string {
	h := id.String()
	return filepath.Join(dir, "blobs", string(kind), h[:2], h)
}

// InjectStoreFault applies arm to the artifact store rooted at dir,
// targeting the blob (kind, id). The store must be quiescent — no
// Store operation may run concurrently with the injection, exactly as
// the real corruptions it models happen while the process is down.
// The damage is a pure function of (arm, id, seed).
func InjectStoreFault(dir string, arm StoreArm, kind cas.Kind, id cas.ID, seed int64) error {
	path := blobFile(dir, kind, id)
	switch arm {
	case BlobBitFlip:
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("faults: %s: %w", arm, err)
		}
		if len(data) == 0 {
			return fmt.Errorf("faults: %s: blob %s is empty, nothing to flip", arm, id)
		}
		// A single flip can never cancel itself out.
		return os.WriteFile(path, CorruptBytes(data, 1, seed), 0o644)

	case BlobTruncate:
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("faults: %s: %w", arm, err)
		}
		if fi.Size() == 0 {
			return fmt.Errorf("faults: %s: blob %s is empty, nothing to truncate", arm, id)
		}
		return os.Truncate(path, fi.Size()/2)

	case TornTempFile:
		// Mirror writeFileAtomic's CreateTemp pattern: <base>.tmp<suffix>
		// in the destination directory.
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("faults: %s: %w", arm, err)
		}
		torn := fmt.Sprintf("%s.tmp%d", path, seed&0xffff)
		half := append([]byte("torn "), CorruptBytes(make([]byte, 64), 32, seed)...)
		return os.WriteFile(torn, half, 0o644)

	case IndexEntryDrop:
		return dropIndexEntry(dir, id)

	default:
		return fmt.Errorf("faults: unknown store arm %v", arm)
	}
}

// dropIndexEntry rewrites the store index without the blob's "b" line
// and without any "t" line naming it, recomputing the trailing CRC so
// the file still parses — the lost-update failure, not a torn file.
// The line-oriented format (RSMCAS01 magic, b/t lines, "c <crc32-hex>"
// trailer over every byte before the c line) is documented in package
// cas and pinned by its fuzz corpus.
func dropIndexEntry(dir string, id cas.ID) error {
	idxPath := filepath.Join(dir, "index")
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		return fmt.Errorf("faults: index-drop: %w", err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		return fmt.Errorf("faults: index-drop: index at %s is not a well-formed index file", idxPath)
	}
	hex := id.String()
	lines := strings.Split(string(raw[:len(raw)-1]), "\n")
	var kept []string
	dropped := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "c ") {
			continue // recomputed below
		}
		fields := strings.Split(line, " ")
		if len(fields) >= 2 && (fields[0] == "b" || fields[0] == "t") && fields[1] == hex {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped == 0 {
		return fmt.Errorf("faults: index-drop: blob %s has no index entry to drop", id)
	}
	body := strings.Join(kept, "\n") + "\n"
	body += fmt.Sprintf("c %08x\n", crc32.ChecksumIEEE([]byte(body)))
	return os.WriteFile(idxPath, []byte(body), 0o644)
}
