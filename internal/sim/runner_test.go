package sim

import (
	"reflect"
	"testing"

	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/telemetry"
)

// TestRunnerDeterministicRepeat: two identical runs through the Runner
// produce identical results (the Runner builds a fresh Simulator per
// Run, so no state leaks between them).
func TestRunnerDeterministicRepeat(t *testing.T) {
	tr := streamTrace(20000)
	first, err := NewRunner(DefaultConfig()).Run(tr, &nextLineSource{degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewRunner(DefaultConfig()).Run(tr, &nextLineSource{degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated runs diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestRunnerBaselineOption: WithBaseline ignores the source entirely —
// passing a real source produces the same result as passing nil, with
// no prefetches issued.
func TestRunnerBaselineOption(t *testing.T) {
	tr := streamTrace(20000)
	withNil, err := NewRunner(DefaultConfig(), WithBaseline()).Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(DefaultConfig(), WithBaseline()).Run(tr, &nextLineSource{degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withNil, got) {
		t.Errorf("WithBaseline result depends on the source:\nnil    %+v\nsource %+v", withNil, got)
	}
	if got.PrefetchesIssued != 0 {
		t.Errorf("baseline issued %d prefetches, want 0", got.PrefetchesIssued)
	}
}

// TestRunnerTelemetryOption: WithTelemetry observes without perturbing —
// the result matches an uninstrumented run, the window streams of two
// instrumented runs are identical, and windows are actually emitted.
func TestRunnerTelemetryOption(t *testing.T) {
	tr := streamTrace(20000)
	collect := func() (Result, []telemetry.WindowSnapshot) {
		tel, err := telemetry.New(telemetry.Config{KeepWindows: true, TraceSample: 16})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(DefaultConfig(), WithTelemetry(tel)).Run(tr, &nextLineSource{degree: 2})
		if err != nil {
			t.Fatal(err)
		}
		return r, tel.Windows()
	}
	plain, err := NewRunner(DefaultConfig()).Run(tr, &nextLineSource{degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, gotWin := collect()
	again, againWin := collect()
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("telemetry perturbed the result:\nplain %+v\ntel   %+v", plain, got)
	}
	if len(gotWin) == 0 {
		t.Fatal("no window snapshots collected")
	}
	if !reflect.DeepEqual(got, again) || !reflect.DeepEqual(gotWin, againWin) {
		t.Errorf("window streams diverged across identical runs: %d vs %d windows", len(gotWin), len(againWin))
	}
}

// TestRunnerOptionMatrix runs every combination of the stateless
// options and checks the combinations behave independently: telemetry
// never changes results, baseline always suppresses prefetching.
func TestRunnerOptionMatrix(t *testing.T) {
	tr := streamTrace(12000)
	plain, err := NewRunner(DefaultConfig()).Run(tr, &nextLineSource{degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewRunner(DefaultConfig(), WithBaseline()).Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, useTel := range []bool{false, true} {
		for _, useBase := range []bool{false, true} {
			var opts []Option
			if useTel {
				tel, terr := telemetry.New(telemetry.Config{KeepWindows: true})
				if terr != nil {
					t.Fatal(terr)
				}
				opts = append(opts, WithTelemetry(tel))
			}
			if useBase {
				opts = append(opts, WithBaseline())
			}
			r, rerr := NewRunner(DefaultConfig(), opts...).Run(tr, &nextLineSource{degree: 2})
			if rerr != nil {
				t.Fatalf("tel=%v base=%v: %v", useTel, useBase, rerr)
			}
			want := plain
			if useBase {
				want = base
			}
			if !reflect.DeepEqual(r, want) {
				t.Errorf("tel=%v base=%v diverged:\ngot  %+v\nwant %+v", useTel, useBase, r, want)
			}
		}
	}
}

// TestRunnerWithDoesNotMutate: With/WithConfig derive copies; the
// original Runner keeps its configuration, so a shared prototype can
// safely hand out per-task variants.
func TestRunnerWithDoesNotMutate(t *testing.T) {
	r := NewRunner(DefaultConfig())
	rb := r.With(WithBaseline())
	if r.set.baseline {
		t.Error("With mutated the original Runner")
	}
	if !rb.set.baseline {
		t.Error("With dropped the new option")
	}
	cfg := DefaultConfig()
	cfg.PrefetchLatency = 7
	rc := rb.WithConfig(cfg)
	if rc.Config().PrefetchLatency != 7 || !rc.set.baseline {
		t.Errorf("WithConfig lost config or settings: %+v %+v", rc.Config(), rc.set)
	}
	if r.Config().PrefetchLatency == 7 {
		t.Error("WithConfig mutated the original Runner")
	}
}

// TestRunnerWrap: WithFaults routes prefetchers through the plan;
// without a plan Wrap is the identity.
func TestRunnerWrap(t *testing.T) {
	var wrapped int
	plan := func(p prefetch.Prefetcher) prefetch.Prefetcher { wrapped++; return p }
	r := NewRunner(DefaultConfig(), WithFaults(plan))
	p := bo.New(bo.Config{})
	if r.Wrap(p) == nil || wrapped != 1 {
		t.Fatalf("Wrap did not route through the plan (wrapped=%d)", wrapped)
	}
	r.WrapAll([]prefetch.Prefetcher{p, p})
	if wrapped != 3 {
		t.Errorf("WrapAll wrapped %d times, want 3", wrapped)
	}
	plainRunner := NewRunner(DefaultConfig())
	if plainRunner.Wrap(p) != p {
		t.Error("Wrap without a plan must be the identity")
	}
}

// TestNilOptionsSkipped: nil options (conditional construction) are
// tolerated.
func TestNilOptionsSkipped(t *testing.T) {
	r := NewRunner(DefaultConfig(), nil, WithBaseline(), nil)
	if !r.set.baseline {
		t.Error("nil options disturbed real ones")
	}
}
