package sim

import (
	"sync/atomic"

	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// settings holds the resolved functional-option values of a Runner.
type settings struct {
	tel        *telemetry.Collector
	ckpPath    string
	ckpEvery   int
	ckpSink    func(blob []byte, cursor int) error
	sinkEvery  int
	ckpScope   string
	resume     bool
	resumeBlob []byte
	interrupt  *atomic.Bool
	stopAfter  int
	baseline   bool
	faults     func(prefetch.Prefetcher) prefetch.Prefetcher
	spanTrack  string
	spanParent telemetry.SpanRef
}

// Option configures a Runner (see the package documentation for the
// pattern).
type Option func(*settings)

// WithTelemetry reports the run into tel: the collector is attached to
// the simulator and — via telemetry.Attachable — to the source, the
// run is labeled in the manifest, and per-window snapshots are
// emitted. A nil collector is equivalent to omitting the option.
func WithTelemetry(tel *telemetry.Collector) Option {
	return func(s *settings) { s.tel = tel }
}

// WithCheckpoint snapshots the run state to path (atomically) every
// `every` trace records and on interrupt. The boundary condition is on
// the absolute trace position, so a resumed run checkpoints at the
// same points as an uninterrupted one. every <= 0 checkpoints only on
// interrupt.
func WithCheckpoint(path string, every int) Option {
	return func(s *settings) { s.ckpPath, s.ckpEvery = path, every }
}

// WithResume loads the WithCheckpoint file before running and
// continues from its cursor instead of record zero.
func WithResume() Option {
	return func(s *settings) { s.resume = true }
}

// WithCheckpointSink hands the serialized checkpoint container to sink
// every `every` trace records and on interrupt, instead of (or in
// addition to) a checkpoint file — the hook a durable artifact store
// uses to capture run snapshots. Like WithCheckpoint, the boundary is
// on the absolute trace position; every <= 0 snapshots only on
// interrupt. The sink must not retain blob past its return.
func WithCheckpointSink(every int, sink func(blob []byte, cursor int) error) Option {
	return func(s *settings) { s.ckpSink, s.sinkEvery = sink, every }
}

// WithCheckpointScope stamps checkpoints with an opaque run-identity
// scope (e.g. the hash of the originating run request) and, on resume,
// rejects a snapshot whose scope differs. The built-in (trace, source)
// validation cannot see parameters like the RNG seed or the fixed-arm
// fraction; the scope closes that hole so a checkpoint can never
// silently resume a *different* run that shares a trace. Empty scope
// disables the check.
func WithCheckpointScope(scope string) Option {
	return func(s *settings) { s.ckpScope = scope }
}

// WithResumeBlob resumes from a serialized checkpoint container held
// in memory (e.g. fetched from the artifact store) instead of a file.
// Takes precedence over WithResume when both are set. Any parse or
// validation failure is reported wrapped in ErrBadResume, after which
// the Simulator and source state are unspecified — the caller must
// rebuild fresh components and run from scratch.
func WithResumeBlob(blob []byte) Option {
	return func(s *settings) { s.resumeBlob = blob }
}

// WithBaseline disables prefetching: Run ignores its source argument
// and simulates the raw hierarchy, so baseline and prefetched runs
// share one call shape.
func WithBaseline() Option {
	return func(s *settings) { s.baseline = true }
}

// WithFaults installs a fault-injection plan. The Runner does not
// invoke it on its own — prefetchers are constructed by the caller —
// but Wrap/WrapAll apply it, giving experiment harnesses and direct
// users a single place to route every prefetcher through the plan.
func WithFaults(plan func(prefetch.Prefetcher) prefetch.Prefetcher) Option {
	return func(s *settings) { s.faults = plan }
}

// WithInterrupt polls flag after every record; when it becomes true
// the run writes a final checkpoint (if WithCheckpoint is configured)
// and returns ErrInterrupted. Signal handlers set it asynchronously.
func WithInterrupt(flag *atomic.Bool) Option {
	return func(s *settings) { s.interrupt = flag }
}

// WithStopAfter interrupts the run after n records have been processed
// in this session — a deterministic interrupt for tests.
func WithStopAfter(n int) Option {
	return func(s *settings) { s.stopAfter = n }
}

// WithSpanTrack names the span-trace track the run's sim.run span is
// rooted on. Span IDs derive from (track, name, ordinal), so harnesses
// that run tasks concurrently pin one track per task slot (e.g.
// "task:3") to keep span trees identical across parallelism levels.
// Default: "<trace>/<source>".
func WithSpanTrack(track string) Option {
	return func(s *settings) { s.spanTrack = track }
}

// WithSpanParent parents the run's sim.run span under a span owned by
// another collector (e.g. the service's per-request span), correlating
// request → run → window-commit across collector boundaries.
func WithSpanParent(ref telemetry.SpanRef) Option {
	return func(s *settings) { s.spanParent = ref }
}

// Runner is the single entry point for trace-driven simulation. It
// binds a Config to a set of cross-cutting options (telemetry,
// checkpointing, fault injection) so every run — plain, instrumented,
// or resumable — goes through one code path. A Runner is immutable
// after construction and safe for concurrent use by multiple
// goroutines; each Run builds a fresh Simulator.
type Runner struct {
	cfg Config
	set settings
}

// NewRunner builds a Runner. The configuration is validated on each
// Run (New panics on an invalid Config, matching the legacy entry
// points).
func NewRunner(cfg Config, opts ...Option) *Runner {
	r := &Runner{cfg: cfg}
	for _, o := range opts {
		if o != nil {
			o(&r.set)
		}
	}
	return r
}

// Config returns the simulation configuration.
func (r *Runner) Config() Config { return r.cfg }

// Telemetry returns the collector installed by WithTelemetry (nil when
// none; the collector's methods are nil-safe).
func (r *Runner) Telemetry() *telemetry.Collector { return r.set.tel }

// With returns a copy of r with additional options applied — e.g. a
// per-task Runner bound to a child telemetry collector, or a baseline
// variant of an instrumented Runner.
func (r *Runner) With(opts ...Option) *Runner {
	nr := &Runner{cfg: r.cfg, set: r.set}
	for _, o := range opts {
		if o != nil {
			o(&nr.set)
		}
	}
	return nr
}

// WithConfig returns a copy of r running under cfg with the same
// options.
func (r *Runner) WithConfig(cfg Config) *Runner {
	return &Runner{cfg: cfg, set: r.set}
}

// Wrap routes one prefetcher through the WithFaults plan (identity
// when no plan is installed).
func (r *Runner) Wrap(p prefetch.Prefetcher) prefetch.Prefetcher {
	if r.set.faults == nil {
		return p
	}
	return r.set.faults(p)
}

// WrapAll routes every prefetcher through the WithFaults plan,
// in place, and returns the slice.
func (r *Runner) WrapAll(ps []prefetch.Prefetcher) []prefetch.Prefetcher {
	for i, p := range ps {
		ps[i] = r.Wrap(p)
	}
	return ps
}

// Run simulates the trace with the given prefetch source (nil — or any
// source under WithBaseline — for no prefetching) and returns the
// measured-region result. With WithCheckpoint/WithResume the run
// snapshots and restores state at record boundaries; on interrupt
// (WithInterrupt/WithStopAfter) it writes a final checkpoint and
// returns ErrInterrupted wrapped with position info.
//
// Determinism contract: interrupting a run at any record boundary and
// resuming it from the written checkpoint produces byte-identical
// telemetry and results to the uninterrupted run. To keep that
// property the snapshot is taken before the end-of-run counter flush —
// the in-progress window accumulators travel through the checkpoint
// and are flushed exactly once, by whichever session finishes.
func (r *Runner) Run(tr *trace.Trace, src Source) (Result, error) {
	if r.set.baseline {
		src = nil
	}
	s := New(r.cfg)
	name := "none"
	if src != nil {
		name = src.Name()
	}
	if tel := r.set.tel; tel != nil {
		s.AttachTelemetry(tel)
		tel.BeginRun(tr.Name, name)
		if a, ok := src.(telemetry.Attachable); ok {
			a.AttachTelemetry(tel)
		}
	}
	if p, ok := src.(telemetry.ControllerProbe); ok {
		s.probe = p
	}

	var runSpan *telemetry.Span
	if tel := r.set.tel; tel != nil {
		if r.set.spanParent.ID != 0 {
			runSpan = tel.StartSpanUnder(r.set.spanParent, "sim.run")
		} else {
			track := r.set.spanTrack
			if track == "" {
				track = tr.Name + "/" + name
			}
			runSpan = tel.StartSpan(track, "sim.run")
		}
		tel.SetRunSpan(runSpan)
		defer func() {
			tel.SetRunSpan(nil)
			runSpan.End()
		}()
	}

	start := 0
	switch {
	case r.set.resumeBlob != nil:
		lsp := runSpan.Child("checkpoint.load")
		cursor, err := s.loadCheckpointBlob(r.set.resumeBlob, tr, src, name, r.set.tel, r.set.ckpScope)
		lsp.End()
		if err != nil {
			return Result{}, err
		}
		start = cursor
	case r.set.resume:
		lsp := runSpan.Child("checkpoint.load")
		cursor, err := s.loadCheckpoint(r.set.ckpPath, tr, src, name, r.set.tel, r.set.ckpScope)
		lsp.End()
		if err != nil {
			return Result{}, err
		}
		start = cursor
	}

	ssp := runSpan.Child("sim.simulate")
	if err := s.simulate(tr, src, name, start, r.set); err != nil {
		ssp.End()
		return Result{}, err
	}
	ssp.End()
	if s.winSize > 0 {
		s.flushCounters()
	}
	return s.result(tr, src), nil
}
