package sim

import (
	"testing"

	"resemble/internal/cache"
	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/trace"
)

// cacheSRRIP returns the SRRIP policy constant (helper keeps the test
// body readable).
func cacheSRRIP() cache.Policy { return cache.SRRIP }

// nextLineSource prefetches the next `degree` sequential lines — a
// near-oracle for streaming traces.
type nextLineSource struct {
	degree int
	buf    []mem.Line
}

func (n *nextLineSource) Name() string { return "nextline" }
func (n *nextLineSource) Reset()       {}
func (n *nextLineSource) OnAccess(a prefetch.AccessContext) []mem.Line {
	n.buf = n.buf[:0]
	for d := 1; d <= n.degree; d++ {
		n.buf = append(n.buf, a.Line+mem.Line(d))
	}
	return n.buf
}

// garbageSource prefetches lines nothing will ever touch.
type garbageSource struct{ buf []mem.Line }

func (g *garbageSource) Name() string { return "garbage" }
func (g *garbageSource) Reset()       {}
func (g *garbageSource) OnAccess(a prefetch.AccessContext) []mem.Line {
	g.buf = g.buf[:0]
	g.buf = append(g.buf, a.Line+1<<40)
	return g.buf
}

// runSim / runBaseline are test-local shorthands over the Runner API
// (the old package-level Run/RunBaseline wrappers are gone).
func runSim(cfg Config, tr *trace.Trace, src Source) Result {
	res, err := NewRunner(cfg).Run(tr, src)
	if err != nil {
		panic(err)
	}
	return res
}

func runBaseline(cfg Config, tr *trace.Trace) Result {
	res, err := NewRunner(cfg, WithBaseline()).Run(tr, nil)
	if err != nil {
		panic(err)
	}
	return res
}

func streamTrace(n int) *trace.Trace {
	return trace.StreamGen{Regions: 4, RegionLines: 4096, PCs: 2}.Generate(n, 42)
}

func TestBaselineStreamHasMisses(t *testing.T) {
	r := runBaseline(DefaultConfig(), streamTrace(20000))
	if r.IPC <= 0 {
		t.Fatalf("IPC = %v, want > 0", r.IPC)
	}
	if r.LLCMisses == 0 {
		t.Fatal("streaming trace should miss in the LLC")
	}
	if r.PrefetchesIssued != 0 || r.Accuracy != 0 {
		t.Errorf("baseline should not prefetch: %+v", r)
	}
	if r.Instructions == 0 || r.Cycles <= 0 {
		t.Errorf("empty measured region: %+v", r)
	}
}

func TestNextLinePrefetchingImprovesStream(t *testing.T) {
	tr := streamTrace(20000)
	cfg := DefaultConfig()
	base := runBaseline(cfg, tr)
	pf := runSim(cfg, tr, &nextLineSource{degree: 2})
	if pf.IPC <= base.IPC {
		t.Fatalf("next-line prefetching did not help: base %.3f vs pf %.3f", base.IPC, pf.IPC)
	}
	if pf.Accuracy < 0.8 {
		t.Errorf("next-line accuracy on stream = %.3f, want > 0.8", pf.Accuracy)
	}
	if pf.Coverage < 0.5 {
		t.Errorf("next-line coverage on stream = %.3f, want > 0.5", pf.Coverage)
	}
	if imp := pf.IPCImprovement(base); imp <= 0 {
		t.Errorf("IPCImprovement = %v, want > 0", imp)
	}
}

func TestGarbagePrefetchingUselessAndHarmless(t *testing.T) {
	tr := streamTrace(10000)
	cfg := DefaultConfig()
	base := runBaseline(cfg, tr)
	pf := runSim(cfg, tr, &garbageSource{})
	if pf.UsefulPrefetches != 0 {
		t.Errorf("garbage prefetches counted useful: %d", pf.UsefulPrefetches)
	}
	if pf.Accuracy != 0 {
		t.Errorf("accuracy = %v, want 0", pf.Accuracy)
	}
	// Garbage prefetching pollutes and consumes bandwidth: IPC must not
	// improve.
	if pf.IPC > base.IPC*1.01 {
		t.Errorf("garbage prefetching improved IPC: %.3f vs %.3f", pf.IPC, base.IPC)
	}
}

func TestMetricInvariants(t *testing.T) {
	for _, name := range []string{"433.milc", "471.omnetpp", "gap.bfs", "hybrid.random"} {
		tr := trace.MustLookup(name).Generate(8000)
		r := runSim(DefaultConfig(), tr, &nextLineSource{degree: 1})
		if r.UsefulPrefetches > r.PrefetchesIssued {
			t.Errorf("%s: useful %d > issued %d", name, r.UsefulPrefetches, r.PrefetchesIssued)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("%s: accuracy %v out of range", name, r.Accuracy)
		}
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Errorf("%s: coverage %v out of range", name, r.Coverage)
		}
		if r.IPC <= 0 || r.IPC > float64(DefaultConfig().IssueWidth) {
			t.Errorf("%s: IPC %v out of range (width %d)", name, r.IPC, DefaultConfig().IssueWidth)
		}
	}
}

func TestPrefetchLatencyHurts(t *testing.T) {
	tr := streamTrace(20000)
	cfg := DefaultConfig()
	fast := runSim(cfg, tr, &nextLineSource{degree: 2})
	cfg.PrefetchLatency = 200 // absurdly slow controller
	slow := runSim(cfg, tr, &nextLineSource{degree: 2})
	if slow.IPC > fast.IPC {
		t.Errorf("huge prefetch latency improved IPC: %.3f vs %.3f", slow.IPC, fast.IPC)
	}
	if slow.LatePrefetchHits == 0 {
		t.Error("expected late prefetch hits with 200-cycle inference latency")
	}
}

func TestLowThroughputDropsPrefetches(t *testing.T) {
	tr := streamTrace(20000)
	cfg := DefaultConfig()
	cfg.PrefetchLatency = 20
	cfg.LowThroughput = true
	r := runSim(cfg, tr, &nextLineSource{degree: 2})
	if r.DroppedPrefetches == 0 {
		t.Error("low-TP controller at 20-cycle latency should drop prefetches")
	}
	cfg.LowThroughput = false
	hi := runSim(cfg, tr, &nextLineSource{degree: 2})
	if hi.DroppedPrefetches != 0 {
		t.Errorf("high-TP controller dropped %d prefetches", hi.DroppedPrefetches)
	}
	if hi.Coverage < r.Coverage {
		t.Errorf("high TP coverage %.3f < low TP %.3f", hi.Coverage, r.Coverage)
	}
}

func TestFromPrefetcherRespectsDegree(t *testing.T) {
	p := bo.New(bo.Config{})
	src := FromPrefetcher(p, 1)
	if src.Name() != "bo" {
		t.Errorf("adapter name = %q", src.Name())
	}
	tr := streamTrace(5000)
	r := runSim(DefaultConfig(), tr, src)
	if r.PrefetchesIssued == 0 {
		t.Error("BO issued no prefetches on a stream")
	}
	// Degree 1 means at most one prefetch per LLC access.
	if r.PrefetchesIssued > r.LLCAccesses {
		t.Errorf("issued %d > LLC accesses %d at degree 1", r.PrefetchesIssued, r.LLCAccesses)
	}
}

func TestMaxDegreeCapsIssues(t *testing.T) {
	tr := streamTrace(10000)
	cfg := DefaultConfig()
	cfg.MaxDegree = 1
	one := runSim(cfg, tr, &nextLineSource{degree: 4})
	cfg.MaxDegree = 4
	four := runSim(cfg, tr, &nextLineSource{degree: 4})
	if one.PrefetchesIssued >= four.PrefetchesIssued {
		t.Errorf("degree cap not effective: %d vs %d", one.PrefetchesIssued, four.PrefetchesIssued)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = cfg
	bad.WarmupFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("warmup fraction 1.5 accepted")
	}
	bad = cfg
	bad.LLC.Sets = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestTemporalWorkloadBaselineSane(t *testing.T) {
	// Pointer chasing has a big footprint: LLC misses must persist.
	tr := trace.MustLookup("471.omnetpp").Generate(20000)
	r := runBaseline(DefaultConfig(), tr)
	if r.LLCMisses == 0 {
		t.Fatal("pointer-chase workload should miss the LLC")
	}
	if r.MPKI <= 0 {
		t.Errorf("MPKI = %v, want > 0", r.MPKI)
	}
}

func TestSRRIPHierarchyRuns(t *testing.T) {
	// The simulator must work with either replacement policy; SRRIP
	// changes victim choice, not correctness.
	tr := streamTrace(10000)
	cfg := DefaultConfig()
	cfg.LLC.Policy = cacheSRRIP()
	r := runSim(cfg, tr, &nextLineSource{degree: 2})
	if r.IPC <= 0 || r.IPC > float64(cfg.IssueWidth) {
		t.Errorf("IPC %v out of range under SRRIP", r.IPC)
	}
	if r.UsefulPrefetches == 0 {
		t.Error("no useful prefetches under SRRIP")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	tr := streamTrace(10000)
	cfg := DefaultConfig()
	cfg.WarmupFraction = 0.5
	half := runBaseline(cfg, tr)
	cfg.WarmupFraction = 0
	full := runBaseline(cfg, tr)
	// The measured instruction count must shrink with warmup.
	if half.Instructions >= full.Instructions {
		t.Errorf("warmup did not reduce measured instructions: %d vs %d",
			half.Instructions, full.Instructions)
	}
	if half.LLCAccesses >= full.LLCAccesses {
		t.Errorf("warmup did not reduce measured accesses: %d vs %d",
			half.LLCAccesses, full.LLCAccesses)
	}
}

func TestMSHRBoundSlowsBurst(t *testing.T) {
	// Fewer MSHRs = less memory-level parallelism = lower IPC on a
	// miss-heavy stream.
	tr := trace.MustLookup("471.omnetpp").Generate(15000)
	wide := DefaultConfig()
	wide.LLC.MSHRs = 32
	narrow := DefaultConfig()
	narrow.LLC.MSHRs = 1
	w := runBaseline(wide, tr)
	n := runBaseline(narrow, tr)
	if n.IPC >= w.IPC {
		t.Errorf("1 MSHR (%.3f IPC) should not beat 32 MSHRs (%.3f IPC)", n.IPC, w.IPC)
	}
}

func TestDeterminism(t *testing.T) {
	tr := streamTrace(8000)
	a := runSim(DefaultConfig(), tr, &nextLineSource{degree: 2})
	b := runSim(DefaultConfig(), tr, &nextLineSource{degree: 2})
	if a.IPC != b.IPC || a.PrefetchesIssued != b.PrefetchesIssued || a.UsefulPrefetches != b.UsefulPrefetches {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}
