package sim

import "testing"

// TestStepSteadyStateZeroAlloc pins the hot-path allocation contract
// (doc.go, "Hot-path allocation discipline"): once the queues and cache
// structures are warm, stepping the simulator allocates nothing — with
// or without a prefetch source. The head-indexed MSHR/ROB/pending
// queues and the by-value cache eviction path are what make this hold;
// a regression here shows up as a nonzero allocs/op long before it
// shows up in wall-clock benchmarks.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  Source
	}{
		{"baseline", nil},
		{"nextline", &nextLineSource{degree: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := streamTrace(30000)
			s := New(DefaultConfig())
			const warm = 20000
			for i := 0; i < warm; i++ {
				s.step(tr.Records[i], tc.src)
			}
			i := warm
			allocs := testing.AllocsPerRun(1000, func() {
				s.step(tr.Records[i], tc.src)
				i++
			})
			if allocs != 0 {
				t.Errorf("steady-state step allocates %.2f/op, want 0", allocs)
			}
		})
	}
}
