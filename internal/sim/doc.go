// Package sim implements the trace-driven memory-hierarchy and core
// timing simulator that stands in for the paper's ChampSim setup
// (DESIGN.md, Substitutions). It models:
//
//   - a three-level data-cache hierarchy (L1D → L2 → LLC) with LRU and
//     prefetch-bit tracking, scaled from the paper's Table V geometry;
//   - a trace-driven out-of-order core: instructions dispatch at the
//     issue width, occupy a finite ROB, and retire in order, so a
//     long-latency miss exposes stall cycles only past the ROB slack —
//     exactly the mechanism that makes prefetching improve IPC;
//   - bounded memory-level parallelism: DRAM requests hold an MSHR slot
//     and respect a minimum inter-request interval (bandwidth);
//   - LLC prefetching with in-flight (pending) fills, so late
//     prefetches hide only part of the miss latency, plus the paper's
//     Figure 11 knobs: controller inference latency and low/high
//     throughput modes.
//
// The prefetch decision logic is abstracted behind Source; individual
// prefetchers and the ensemble controllers all plug in through it.
//
// # Running simulations
//
// Runner is the single entry point. It is constructed once from a
// Config plus functional options and then drives any number of runs;
// every cross-cutting concern — telemetry, checkpoint/resume,
// interrupts, fault injection — is an Option rather than a separate
// RunXxx entry point:
//
//	r := sim.NewRunner(cfg,
//		sim.WithTelemetry(tel),
//		sim.WithCheckpoint("run.ckpt", 10_000),
//		sim.WithFaults(plan),
//	)
//	base, _ := r.With(sim.WithBaseline()).Run(tr, nil)
//	res, err := r.Run(tr, controller)
//
// A Runner is immutable and safe for concurrent use: each Run builds a
// fresh Simulator, so parallel harnesses share one Runner prototype
// and derive per-task variants with With (typically rebinding
// WithTelemetry to a per-task child collector) or WithConfig. The
// experiment harness in internal/experiments follows exactly this
// pattern: experiments.Options carries a []sim.Option that is applied
// verbatim to the Runner, so experiment code and direct simulator use
// share one configuration path.
//
// The legacy entry points (Run, RunBaseline, RunWithTelemetry,
// RunResumable and the RunOpts carrier) have been removed after their
// deprecation release; Runner options are the only way to configure a
// run.
//
// # Hot-path allocation discipline
//
// The steady-state per-record path (step → access → dramIssue /
// issuePrefetches / commitFills) allocates nothing: the MSHR, ROB and
// pending-fill queues are head-indexed FIFOs over preallocated backing
// arrays, and cache insertions return eviction records by value. Code
// added to this path must preserve that property — it is pinned by
// allocation-guard tests and the cmd/bench allocation budgets.
package sim
