package sim

// Integration tests asserting the paper's qualitative claims end to
// end: prefetcher/workload affinity (Figure 1c) and the ensemble
// ordering (Figures 8–10). These run the full stack — generators,
// hierarchy, timing model, prefetchers, controllers — so they are
// skipped under -short.

import (
	"testing"

	"resemble/internal/core"
	"resemble/internal/ensemble/sbp"
	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/domino"
	"resemble/internal/prefetch/isb"
	"resemble/internal/prefetch/spp"
	"resemble/internal/trace"
)

func fourPF() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		bo.New(bo.Config{}), spp.New(spp.Config{}),
		isb.New(isb.Config{}), domino.New(domino.Config{}),
	}
}

func runOn(t *testing.T, workload string, n int, src Source) (Result, Result) {
	t.Helper()
	tr := trace.MustLookup(workload).Generate(n)
	cfg := DefaultConfig()
	return runSim(cfg, tr, src), runBaseline(cfg, tr)
}

func TestFig1cSpatialWorkloadFavorsBO(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	boRes, base := runOn(t, "433.lbm", 30000, FromPrefetcher(bo.New(bo.Config{}), 2))
	isbRes, _ := runOn(t, "433.lbm", 30000, FromPrefetcher(isb.New(isb.Config{}), 2))
	if boRes.IPCImprovement(base) <= isbRes.IPCImprovement(base) {
		t.Errorf("BO (%.3f) should beat ISB (%.3f) on a streaming workload",
			boRes.IPCImprovement(base), isbRes.IPCImprovement(base))
	}
	if boRes.Coverage < 0.5 {
		t.Errorf("BO coverage on stream = %.3f, want > 0.5", boRes.Coverage)
	}
}

func TestFig1cTemporalWorkloadFavorsISB(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	isbRes, base := runOn(t, "471.omnetpp", 30000, FromPrefetcher(isb.New(isb.Config{}), 2))
	boRes, _ := runOn(t, "471.omnetpp", 30000, FromPrefetcher(bo.New(bo.Config{}), 2))
	if isbRes.IPCImprovement(base) <= boRes.IPCImprovement(base) {
		t.Errorf("ISB (%.3f) should beat BO (%.3f) on pointer chasing",
			isbRes.IPCImprovement(base), boRes.IPCImprovement(base))
	}
	if isbRes.Accuracy < 0.5 {
		t.Errorf("ISB accuracy on pointer chasing = %.3f, want > 0.5", isbRes.Accuracy)
	}
}

func TestEnsembleBeatsSBPOnInterleavedHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The paper's key criticism of SBP is response lag: a sub-optimal
	// prefetcher keeps working for a whole evaluation period. On
	// record-level interleaving of spatial and temporal streams the
	// per-access RL controller must therefore win decisively (on long
	// coarse phases the two are expected to be competitive).
	ccfg := core.DefaultConfig()
	ccfg.Batch = 64 // keep test runtime sane; see EXPERIMENTS.md
	res, base := runOn(t, "hybrid.interleave", 40000, core.NewController(ccfg, fourPF()))
	sbpRes, _ := runOn(t, "hybrid.interleave", 40000, sbp.New(sbp.Config{}, fourPF()))
	if got, want := res.IPCImprovement(base), sbpRes.IPCImprovement(base); got <= want {
		t.Errorf("ReSemble (%.3f) should beat SBP(E) (%.3f) on an interleaved hybrid", got, want)
	}
}

func TestTabularBeatsSBPOnInterleavedHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ccfg := core.DefaultConfig()
	ccfg.Batch = 64
	res, base := runOn(t, "hybrid.interleave", 40000, core.NewTabularController(ccfg, fourPF()))
	sbpRes, _ := runOn(t, "hybrid.interleave", 40000, sbp.New(sbp.Config{}, fourPF()))
	if got, want := res.IPCImprovement(base), sbpRes.IPCImprovement(base); got <= want {
		t.Errorf("ReSemble-T (%.3f) should beat SBP(E) (%.3f) on an interleaved hybrid", got, want)
	}
}

func TestResembleAvoidsHarmOnIrregular(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// On GAP-like irregular workloads every prefetcher pollutes; the RL
	// controller must learn NP and keep the damage minimal — the
	// paper's central adaptability claim.
	ccfg := core.DefaultConfig()
	ccfg.Batch = 64
	res, base := runOn(t, "gap.bfs", 40000, core.NewController(ccfg, fourPF()))
	dom, _ := runOn(t, "gap.bfs", 40000, FromPrefetcher(domino.New(domino.Config{}), 2))
	if res.IPCImprovement(base) < dom.IPCImprovement(base) {
		t.Errorf("ReSemble (%.3f) should hurt less than blind Domino (%.3f) on irregular accesses",
			res.IPCImprovement(base), dom.IPCImprovement(base))
	}
	if res.IPCImprovement(base) < -0.05 {
		t.Errorf("ReSemble IPC impact on irregular = %.3f, want > -5%% (mostly NP)", res.IPCImprovement(base))
	}
}

func TestEnsembleCoversBothPatternClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// One controller instance must achieve solid coverage on BOTH a
	// spatial and a temporal workload — the single-prefetcher baselines
	// provably cannot (Fig 1c).
	ccfg := core.DefaultConfig()
	ccfg.Batch = 64
	spatial, _ := runOn(t, "433.lbm", 30000, core.NewController(ccfg, fourPF()))
	temporal, _ := runOn(t, "471.omnetpp", 30000, core.NewController(ccfg, fourPF()))
	if spatial.Coverage < 0.4 {
		t.Errorf("ensemble coverage on stream = %.3f, want > 0.4", spatial.Coverage)
	}
	if temporal.Coverage < 0.4 {
		t.Errorf("ensemble coverage on pointer chase = %.3f, want > 0.4", temporal.Coverage)
	}
}
