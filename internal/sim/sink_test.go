package sim_test

import (
	"errors"
	"reflect"
	"testing"

	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/stride"
	"resemble/internal/sim"
)

// capture collects every checkpoint blob a run hands to the sink.
type capture struct {
	blobs   [][]byte
	cursors []int
}

func (c *capture) sink(blob []byte, cursor int) error {
	c.blobs = append(c.blobs, append([]byte(nil), blob...))
	c.cursors = append(c.cursors, cursor)
	return nil
}

func (c *capture) last() []byte {
	if len(c.blobs) == 0 {
		return nil
	}
	return c.blobs[len(c.blobs)-1]
}

// TestCheckpointSinkAndBlobResume is the in-memory mirror of
// TestResumeDeterministicSolo: checkpoints flow through the sink as
// serialized containers (the artifact-store path), the run is
// interrupted, and a fresh session resumes from the captured blob —
// producing the result of an uninterrupted run.
func TestCheckpointSinkAndBlobResume(t *testing.T) {
	tr := resumeTrace(t, 8000)
	cfg := sim.DefaultConfig()
	mk := func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 2) }
	want, err := sim.NewRunner(cfg).Run(tr, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{700, 4096} {
		cap := &capture{}
		_, err := sim.NewRunner(cfg,
			sim.WithCheckpointSink(1024, cap.sink),
			sim.WithCheckpointScope("scope-A"),
			sim.WithStopAfter(stop),
		).Run(tr, mk())
		if !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("stop=%d: want ErrInterrupted, got %v", stop, err)
		}
		// The final blob covers the interrupt cursor itself.
		if got := cap.cursors[len(cap.cursors)-1]; got != stop {
			t.Fatalf("stop=%d: last sink cursor = %d", stop, got)
		}
		// Periodic boundaries land on the absolute-position grid.
		for i, cur := range cap.cursors[:len(cap.cursors)-1] {
			if cur != (i+1)*1024 {
				t.Fatalf("stop=%d: sink cursor %d = %d, want %d", stop, i, cur, (i+1)*1024)
			}
		}
		got, err := sim.NewRunner(cfg,
			sim.WithResumeBlob(cap.last()),
			sim.WithCheckpointScope("scope-A"),
		).Run(tr, mk())
		if err != nil {
			t.Fatalf("stop=%d: blob resume: %v", stop, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("stop=%d: blob-resumed result differs:\nwant %+v\ngot  %+v", stop, want, got)
		}
	}
}

// TestBlobResumeRejections pins ErrBadResume for every way a resume
// blob can be unusable: corrupt bytes, a scope that does not match the
// run (e.g. same trace, different seed), and the wrong source.
func TestBlobResumeRejections(t *testing.T) {
	tr := resumeTrace(t, 4000)
	cfg := sim.DefaultConfig()
	mk := func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 2) }
	cap := &capture{}
	_, err := sim.NewRunner(cfg,
		sim.WithCheckpointSink(0, cap.sink),
		sim.WithCheckpointScope("run-hash-1"),
		sim.WithStopAfter(1000),
	).Run(tr, mk())
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatal(err)
	}
	blob := cap.last()
	if blob == nil {
		t.Fatal("interrupt produced no sink blob")
	}

	t.Run("corrupt blob", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0xFF
		_, err := sim.NewRunner(cfg, sim.WithResumeBlob(bad), sim.WithCheckpointScope("run-hash-1")).Run(tr, mk())
		if !errors.Is(err, sim.ErrBadResume) {
			t.Errorf("corrupt blob = %v, want ErrBadResume", err)
		}
	})
	t.Run("scope mismatch", func(t *testing.T) {
		_, err := sim.NewRunner(cfg, sim.WithResumeBlob(blob), sim.WithCheckpointScope("run-hash-2")).Run(tr, mk())
		if !errors.Is(err, sim.ErrBadResume) {
			t.Errorf("scope mismatch = %v, want ErrBadResume", err)
		}
	})
	t.Run("wrong source", func(t *testing.T) {
		src := sim.FromPrefetcher(bo.New(bo.Config{}), 2)
		_, err := sim.NewRunner(cfg, sim.WithResumeBlob(blob), sim.WithCheckpointScope("run-hash-1")).Run(tr, src)
		if !errors.Is(err, sim.ErrBadResume) {
			t.Errorf("wrong source = %v, want ErrBadResume", err)
		}
	})
	t.Run("empty scope skips the check", func(t *testing.T) {
		if _, err := sim.NewRunner(cfg, sim.WithResumeBlob(blob)).Run(tr, mk()); err != nil {
			t.Errorf("unscoped blob resume: %v", err)
		}
	})
}
