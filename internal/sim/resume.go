package sim

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"resemble/internal/checkpoint"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// ErrInterrupted is returned by Runner.Run when the run stopped on an
// interrupt request before reaching the end of the trace. If a
// checkpoint path was configured, a checkpoint covering the stop point
// was written before returning.
var ErrInterrupted = errors.New("sim: run interrupted")

// ckpMeta is the checkpoint's "meta" section: where to resume and what
// run the snapshot belongs to.
type ckpMeta struct {
	Cursor    int // next record index to process
	TraceName string
	TraceLen  int
	Source    string
}

// simulate drives the record loop from start: warmup-boundary reset,
// per-record stepping, and — when the settings ask for them —
// checkpoint boundaries and interrupt polling. The common case (no
// checkpointing, no interrupt source) takes a branch-free fast loop.
func (s *Simulator) simulate(tr *trace.Trace, src Source, name string, start int, set settings) error {
	warmupEnd := int(float64(len(tr.Records)) * s.cfg.WarmupFraction)
	if set.ckpPath == "" && set.interrupt == nil && set.stopAfter <= 0 {
		for i := start; i < len(tr.Records); i++ {
			rec := tr.Records[i]
			if i == warmupEnd {
				s.resetMeasurement(rec.ID)
			}
			s.step(rec, src)
		}
		return nil
	}
	processed := 0
	for i := start; i < len(tr.Records); i++ {
		rec := tr.Records[i]
		if i == warmupEnd {
			s.resetMeasurement(rec.ID)
		}
		s.step(rec, src)
		processed++
		cursor := i + 1
		if cursor == len(tr.Records) {
			break // run complete; no trailing checkpoint needed
		}
		interrupted := (set.interrupt != nil && set.interrupt.Load()) ||
			(set.stopAfter > 0 && processed >= set.stopAfter)
		boundary := set.ckpEvery > 0 && cursor%set.ckpEvery == 0
		if set.ckpPath != "" && (interrupted || boundary) {
			csp := set.tel.RunSpanChild("checkpoint.write")
			err := s.writeCheckpoint(set.ckpPath, tr, src, name, set.tel, cursor)
			csp.End()
			if err != nil {
				return err
			}
		}
		if interrupted {
			return fmt.Errorf("%w at record %d/%d", ErrInterrupted, cursor, len(tr.Records))
		}
	}
	return nil
}

// writeCheckpoint snapshots the run into path: a meta section (cursor
// and run identity), the simulator, the source, and the telemetry
// collector when one is attached.
func (s *Simulator) writeCheckpoint(path string, tr *trace.Trace, src Source, name string, tel *telemetry.Collector, cursor int) error {
	b := checkpoint.NewBuilder()
	meta := ckpMeta{Cursor: cursor, TraceName: tr.Name, TraceLen: len(tr.Records), Source: name}
	if err := b.Add("meta", func(w io.Writer) error { return gob.NewEncoder(w).Encode(&meta) }); err != nil {
		return err
	}
	if err := b.Add("sim", s.SaveState); err != nil {
		return err
	}
	if src != nil {
		st, ok := src.(checkpoint.Stater)
		if !ok {
			return fmt.Errorf("sim: source %q does not support checkpointing", name)
		}
		if err := b.Add("source", st.SaveState); err != nil {
			return err
		}
	}
	if tel != nil {
		if err := b.Add("telemetry", tel.SaveState); err != nil {
			return err
		}
	}
	// Transient write failures (a full disk racing a cleanup, flaky
	// network filesystems) are retried with backoff; each attempt is
	// atomic, so the previous good checkpoint survives until a write
	// fully lands.
	return b.WriteFileRetry(context.Background(), path, checkpoint.DefaultWriteRetry(), nil)
}

// loadCheckpoint restores the run state from path, validating that the
// snapshot belongs to this (trace, source) pair, and returns the
// resume cursor.
func (s *Simulator) loadCheckpoint(path string, tr *trace.Trace, src Source, name string, tel *telemetry.Collector) (int, error) {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var meta ckpMeta
	if err := f.Load("meta", func(r io.Reader) error { return gob.NewDecoder(r).Decode(&meta) }); err != nil {
		return 0, err
	}
	if meta.TraceName != tr.Name || meta.TraceLen != len(tr.Records) {
		return 0, fmt.Errorf("sim: checkpoint belongs to trace %q (%d records), not %q (%d records)",
			meta.TraceName, meta.TraceLen, tr.Name, len(tr.Records))
	}
	if meta.Source != name {
		return 0, fmt.Errorf("sim: checkpoint belongs to source %q, not %q", meta.Source, name)
	}
	if meta.Cursor < 0 || meta.Cursor > len(tr.Records) {
		return 0, fmt.Errorf("sim: checkpoint cursor %d out of range [0,%d]", meta.Cursor, len(tr.Records))
	}
	if err := f.Load("sim", s.LoadState); err != nil {
		return 0, err
	}
	if src != nil {
		st, ok := src.(checkpoint.Stater)
		if !ok {
			return 0, fmt.Errorf("sim: source %q does not support checkpointing", name)
		}
		if err := f.Load("source", st.LoadState); err != nil {
			return 0, err
		}
	}
	// Telemetry restore runs after BeginRun (which reset the window
	// index and diff baseline) so the collector continues the original
	// window sequence.
	if tel != nil && f.Has("telemetry") {
		if err := f.Load("telemetry", tel.LoadState); err != nil {
			return 0, err
		}
	}
	return meta.Cursor, nil
}
