package sim

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"resemble/internal/checkpoint"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// ErrInterrupted is returned by Runner.Run when the run stopped on an
// interrupt request before reaching the end of the trace. If a
// checkpoint path or sink was configured, a checkpoint covering the
// stop point was written before returning.
var ErrInterrupted = errors.New("sim: run interrupted")

// ErrBadResume wraps every failure to resume from a WithResumeBlob
// snapshot — unparseable container, wrong trace/source/scope, corrupt
// section. Determinism makes the fallback cheap: a caller that sees
// ErrBadResume rebuilds fresh components and runs from record zero,
// producing the exact result the resumed run would have.
var ErrBadResume = errors.New("sim: resume snapshot unusable")

// CanCheckpoint reports whether src can take part in run
// checkpointing: it implements checkpoint.Stater (or there is no
// source at all — the baseline run checkpoints fine). Attaching a
// checkpoint file or sink to a run whose source cannot snapshot fails
// at the first checkpoint boundary; callers offering best-effort
// durability probe first and skip checkpointing instead.
func CanCheckpoint(src Source) bool {
	if src == nil {
		return true
	}
	_, ok := src.(checkpoint.Stater)
	return ok
}

// ckpMeta is the checkpoint's "meta" section: where to resume and what
// run the snapshot belongs to. Scope carries the caller's run-identity
// hash (WithCheckpointScope); empty means unscoped.
type ckpMeta struct {
	Cursor    int // next record index to process
	TraceName string
	TraceLen  int
	Source    string
	Scope     string
}

// simulate drives the record loop from start: warmup-boundary reset,
// per-record stepping, and — when the settings ask for them —
// checkpoint boundaries and interrupt polling. The common case (no
// checkpointing, no interrupt source) takes a branch-free fast loop.
func (s *Simulator) simulate(tr *trace.Trace, src Source, name string, start int, set settings) error {
	warmupEnd := int(float64(len(tr.Records)) * s.cfg.WarmupFraction)
	if set.ckpPath == "" && set.ckpSink == nil && set.interrupt == nil && set.stopAfter <= 0 {
		for i := start; i < len(tr.Records); i++ {
			rec := tr.Records[i]
			if i == warmupEnd {
				s.resetMeasurement(rec.ID)
			}
			s.step(rec, src)
		}
		return nil
	}
	processed := 0
	for i := start; i < len(tr.Records); i++ {
		rec := tr.Records[i]
		if i == warmupEnd {
			s.resetMeasurement(rec.ID)
		}
		s.step(rec, src)
		processed++
		cursor := i + 1
		if cursor == len(tr.Records) {
			break // run complete; no trailing checkpoint needed
		}
		interrupted := (set.interrupt != nil && set.interrupt.Load()) ||
			(set.stopAfter > 0 && processed >= set.stopAfter)
		needFile := set.ckpPath != "" &&
			(interrupted || (set.ckpEvery > 0 && cursor%set.ckpEvery == 0))
		needSink := set.ckpSink != nil &&
			(interrupted || (set.sinkEvery > 0 && cursor%set.sinkEvery == 0))
		if needFile || needSink {
			csp := set.tel.RunSpanChild("checkpoint.write")
			err := s.emitCheckpoint(tr, src, name, set, cursor, needFile, needSink)
			csp.End()
			if err != nil {
				return err
			}
		}
		if interrupted {
			return fmt.Errorf("%w at record %d/%d", ErrInterrupted, cursor, len(tr.Records))
		}
	}
	return nil
}

// emitCheckpoint builds the snapshot once and lands it on the
// configured targets: the checkpoint file (atomic, retried) and/or the
// checkpoint sink (serialized container bytes).
func (s *Simulator) emitCheckpoint(tr *trace.Trace, src Source, name string, set settings, cursor int, toFile, toSink bool) error {
	b, err := s.buildCheckpoint(tr, src, name, set.tel, cursor, set.ckpScope)
	if err != nil {
		return err
	}
	if toFile {
		// Transient write failures (a full disk racing a cleanup, flaky
		// network filesystems) are retried with backoff; each attempt is
		// atomic, so the previous good checkpoint survives until a write
		// fully lands.
		if err := b.WriteFileRetry(context.Background(), set.ckpPath, checkpoint.DefaultWriteRetry(), nil); err != nil {
			return err
		}
	}
	if toSink {
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return err
		}
		if err := set.ckpSink(buf.Bytes(), cursor); err != nil {
			return fmt.Errorf("sim: checkpoint sink at record %d: %w", cursor, err)
		}
	}
	return nil
}

// buildCheckpoint snapshots the run: a meta section (cursor and run
// identity), the simulator, the source, and the telemetry collector
// when one is attached.
func (s *Simulator) buildCheckpoint(tr *trace.Trace, src Source, name string, tel *telemetry.Collector, cursor int, scope string) (*checkpoint.Builder, error) {
	b := checkpoint.NewBuilder()
	meta := ckpMeta{Cursor: cursor, TraceName: tr.Name, TraceLen: len(tr.Records), Source: name, Scope: scope}
	if err := b.Add("meta", func(w io.Writer) error { return gob.NewEncoder(w).Encode(&meta) }); err != nil {
		return nil, err
	}
	if err := b.Add("sim", s.SaveState); err != nil {
		return nil, err
	}
	if src != nil {
		st, ok := src.(checkpoint.Stater)
		if !ok {
			return nil, fmt.Errorf("sim: source %q does not support checkpointing", name)
		}
		if err := b.Add("source", st.SaveState); err != nil {
			return nil, err
		}
	}
	if tel != nil {
		if err := b.Add("telemetry", tel.SaveState); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// loadCheckpoint restores the run state from path, validating that the
// snapshot belongs to this (trace, source, scope) tuple, and returns
// the resume cursor.
func (s *Simulator) loadCheckpoint(path string, tr *trace.Trace, src Source, name string, tel *telemetry.Collector, scope string) (int, error) {
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return s.restoreCheckpoint(f, tr, src, name, tel, scope)
}

// loadCheckpointBlob restores the run state from serialized container
// bytes. Every failure — parse, validation, section restore — comes
// back wrapped in ErrBadResume so callers can fall back to a scratch
// run (after rebuilding fresh components).
func (s *Simulator) loadCheckpointBlob(blob []byte, tr *trace.Trace, src Source, name string, tel *telemetry.Collector, scope string) (int, error) {
	f, err := checkpoint.Read(bytes.NewReader(blob))
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBadResume, err)
	}
	cursor, err := s.restoreCheckpoint(f, tr, src, name, tel, scope)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBadResume, err)
	}
	return cursor, nil
}

// restoreCheckpoint hands a parsed container back to the run's
// components, validating the meta section first.
func (s *Simulator) restoreCheckpoint(f *checkpoint.File, tr *trace.Trace, src Source, name string, tel *telemetry.Collector, scope string) (int, error) {
	var meta ckpMeta
	if err := f.Load("meta", func(r io.Reader) error { return gob.NewDecoder(r).Decode(&meta) }); err != nil {
		return 0, err
	}
	if meta.TraceName != tr.Name || meta.TraceLen != len(tr.Records) {
		return 0, fmt.Errorf("sim: checkpoint belongs to trace %q (%d records), not %q (%d records)",
			meta.TraceName, meta.TraceLen, tr.Name, len(tr.Records))
	}
	if meta.Source != name {
		return 0, fmt.Errorf("sim: checkpoint belongs to source %q, not %q", meta.Source, name)
	}
	if scope != "" && meta.Scope != scope {
		return 0, fmt.Errorf("sim: checkpoint scope %q does not match run scope %q", meta.Scope, scope)
	}
	if meta.Cursor < 0 || meta.Cursor > len(tr.Records) {
		return 0, fmt.Errorf("sim: checkpoint cursor %d out of range [0,%d]", meta.Cursor, len(tr.Records))
	}
	if err := f.Load("sim", s.LoadState); err != nil {
		return 0, err
	}
	if src != nil {
		st, ok := src.(checkpoint.Stater)
		if !ok {
			return 0, fmt.Errorf("sim: source %q does not support checkpointing", name)
		}
		if err := f.Load("source", st.LoadState); err != nil {
			return 0, err
		}
	}
	// Telemetry restore runs after BeginRun (which reset the window
	// index and diff baseline) so the collector continues the original
	// window sequence.
	if tel != nil && f.Has("telemetry") {
		if err := f.Load("telemetry", tel.LoadState); err != nil {
			return 0, err
		}
	}
	return meta.Cursor, nil
}
