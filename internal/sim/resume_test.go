package sim_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/stride"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

func resumeTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	w, err := trace.Lookup("471.omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	return w.GenerateSeeded(n, w.Seed)
}

func TestCheckpointRunnerMatchesPlainRun(t *testing.T) {
	tr := resumeTrace(t, 8000)
	cfg := sim.DefaultConfig()
	want, err := sim.NewRunner(cfg).Run(tr, sim.FromPrefetcher(bo.New(bo.Config{}), 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.NewRunner(cfg, sim.WithCheckpoint("", 0)).Run(tr, sim.FromPrefetcher(bo.New(bo.Config{}), 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("checkpoint-capable runner result differs from plain run:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestResumeDeterministicSolo interrupts a solo-prefetcher run at
// several points (before and after the warmup boundary, on and off the
// periodic-checkpoint grid) and verifies the resumed run's result is
// identical to the uninterrupted run.
func TestResumeDeterministicSolo(t *testing.T) {
	tr := resumeTrace(t, 8000)
	cfg := sim.DefaultConfig()
	mk := func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 2) }
	want, err := sim.NewRunner(cfg).Run(tr, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{700, 1600, 4096, 7999} {
		ckp := filepath.Join(t.TempDir(), "run.ckpt")
		_, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 1024), sim.WithStopAfter(stop)).Run(tr, mk())
		if !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("stop=%d: want ErrInterrupted, got %v", stop, err)
		}
		got, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithResume()).Run(tr, mk())
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stop, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("stop=%d: resumed result differs from uninterrupted:\nwant %+v\ngot  %+v", stop, want, got)
		}
	}
}

// TestResumeTwoInterrupts chains two interruptions: the state must
// survive any number of stop/resume cycles.
func TestResumeTwoInterrupts(t *testing.T) {
	tr := resumeTrace(t, 8000)
	cfg := sim.DefaultConfig()
	mk := func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 2) }
	want, err := sim.NewRunner(cfg).Run(tr, mk())
	if err != nil {
		t.Fatal(err)
	}
	ckp := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithStopAfter(2000)).Run(tr, mk()); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("first stop: %v", err)
	}
	if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithResume(), sim.WithStopAfter(3000)).Run(tr, mk()); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("second stop: %v", err)
	}
	got, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithResume()).Run(tr, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("twice-resumed result differs from uninterrupted:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestResumeValidation(t *testing.T) {
	tr := resumeTrace(t, 4000)
	cfg := sim.DefaultConfig()
	ckp := filepath.Join(t.TempDir(), "run.ckpt")
	mk := func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 2) }
	if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithStopAfter(1000)).Run(tr, mk()); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatal(err)
	}

	t.Run("wrong trace", func(t *testing.T) {
		other := resumeTrace(t, 5000)
		if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithResume()).Run(other, mk()); err == nil {
			t.Error("resuming on a different trace must fail")
		}
	})
	t.Run("wrong source", func(t *testing.T) {
		src := sim.FromPrefetcher(bo.New(bo.Config{}), 2)
		if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(ckp, 0), sim.WithResume()).Run(tr, src); err == nil {
			t.Error("resuming with a different source must fail")
		}
	})
	t.Run("corrupt file", func(t *testing.T) {
		data, err := os.ReadFile(ckp)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(bad, 0), sim.WithResume()).Run(tr, mk()); err == nil {
			t.Error("resuming from a corrupt checkpoint must fail")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := sim.NewRunner(cfg, sim.WithCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), 0), sim.WithResume()).Run(tr, mk()); err == nil {
			t.Error("resuming from a missing checkpoint must fail")
		}
	})
}
