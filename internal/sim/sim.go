package sim

import (
	"fmt"
	"math"

	"resemble/internal/cache"
	"resemble/internal/flatmap"
	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// Source decides what to prefetch on every LLC access. Individual
// prefetchers are adapted via FromPrefetcher; ensemble controllers
// implement Source directly.
type Source interface {
	// Name labels the source in results.
	Name() string
	// OnAccess observes one LLC access and returns the cache lines to
	// prefetch for it (possibly none). The slice is only read before
	// the next OnAccess call.
	OnAccess(prefetch.AccessContext) []mem.Line
	// Reset discards all learned state.
	Reset()
}

// Config holds the simulation parameters (scaled from the paper's
// Table V; see DefaultConfig).
type Config struct {
	L1D, L2, LLC cache.Config

	// DRAMLatency is the additional latency of a memory access beyond
	// the LLC, in cycles.
	DRAMLatency uint64
	// DRAMInterval is the minimum number of cycles between DRAM request
	// issues (per-core bandwidth bound).
	DRAMInterval uint64

	// IssueWidth is the core's dispatch/retire width.
	IssueWidth int
	// ROB is the reorder-buffer capacity in instructions.
	ROB int

	// MaxDegree bounds the prefetch lines issued per access.
	MaxDegree int

	// PrefetchLatency is the controller inference latency in cycles
	// added before a prefetch issues (Figure 11's T).
	PrefetchLatency uint64
	// LowThroughput models a non-pipelined controller that performs one
	// inference per PrefetchLatency cycles: prefetch opportunities that
	// arrive while the controller is busy are dropped (Figure 11 low
	// TP). When false, the controller is fully pipelined (high TP).
	LowThroughput bool

	// WarmupFraction is the fraction of accesses used for warmup;
	// statistics are collected on the remainder (the paper warms 20M of
	// 100M instructions).
	WarmupFraction float64
}

// DefaultConfig returns the evaluation configuration: the paper's
// Table V hierarchy scaled by 64× to match the synthetic workloads'
// footprints (see DESIGN.md), with Table V core parameters.
func DefaultConfig() Config {
	return Config{
		L1D: cache.Config{Name: "L1D", Sets: 8, Ways: 8, Latency: 5, MSHRs: 16},
		L2:  cache.Config{Name: "L2", Sets: 32, Ways: 8, Latency: 11, MSHRs: 32},
		LLC: cache.Config{Name: "LLC", Sets: 128, Ways: 16, Latency: 21, MSHRs: 32},

		DRAMLatency:  150,
		DRAMInterval: 4,

		IssueWidth: 4,
		ROB:        256,

		MaxDegree: 4,

		WarmupFraction: 0.2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, cc := range []cache.Config{c.L1D, c.L2, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.IssueWidth <= 0 {
		return fmt.Errorf("sim: issue width must be positive")
	}
	if c.ROB <= 0 {
		return fmt.Errorf("sim: ROB must be positive")
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("sim: warmup fraction must be in [0,1)")
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	Workload string
	Source   string

	// Instructions and Cycles cover the measured (post-warmup) region.
	Instructions uint64
	Cycles       float64
	// IPC is Instructions/Cycles.
	IPC float64

	// LLCAccesses and LLCMisses are demand numbers at the LLC in the
	// measured region. LLCMisses counts uncovered misses (late prefetch
	// hits are covered).
	LLCAccesses uint64
	LLCMisses   uint64
	// MPKI is uncovered LLC misses per kilo-instruction.
	MPKI float64

	// PrefetchesIssued counts prefetch requests sent to memory;
	// UsefulPrefetches counts prefetched lines demand-referenced before
	// eviction (including late prefetches hit while in flight);
	// DroppedPrefetches counts suggestions dropped by the low-throughput
	// controller model.
	PrefetchesIssued  uint64
	UsefulPrefetches  uint64
	LatePrefetchHits  uint64
	DroppedPrefetches uint64

	// Accuracy is useful/issued; Coverage is useful/(useful+uncovered
	// misses) — the paper's "ratio of useful prefetches to the overall
	// cache misses".
	Accuracy float64
	Coverage float64

	// Caches holds the per-level statistics for the measured region.
	Caches map[string]cache.Stats
}

// IPCImprovement returns the relative IPC gain of r over base, e.g.
// 0.25 for a 25% improvement.
func (r Result) IPCImprovement(base Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return (r.IPC - base.IPC) / base.IPC
}

// pendingFill is an in-flight prefetch.
type pendingFill struct {
	line mem.Line
	fill float64 // cycle at which the line lands in the LLC
}

// loadRetire records a load's retire time for the ROB-occupancy model.
type loadRetire struct {
	id     uint64  // instruction id
	retire float64 // cycle the load retires
}

// Simulator runs traces through the hierarchy and timing model.
type Simulator struct {
	cfg Config

	l1d, l2, llc *cache.Cache

	// Timing state. The three FIFO queues (mshr, robQ, pending) are
	// head-indexed: consuming the front advances the head instead of
	// reslicing (s = s[1:] forces append to reallocate the backing array
	// every few pushes), and pushes compact the live region back to the
	// start once the backing array fills. Live contents are
	// buf[head:len(buf)], oldest first; steady state allocates nothing.
	dispatch     float64 // dispatch clock of the most recent load
	retire       float64 // retire clock of the most recent load
	lastID       uint64  // instruction id of the most recent load
	mshr         []float64
	mshrHead     int
	dramNextFree float64
	robQ         []loadRetire
	robHead      int

	// Prefetch state.
	pending  []pendingFill // FIFO by fill time
	pendHead int
	// pendingSet maps in-flight line -> fill time (float64 bits). A flat
	// open-addressed table: in-flight membership is probed on every miss
	// and every candidate prefetch, making this the hottest map in the
	// simulator.
	pendingSet   *flatmap.Map
	ctrlBusyTill float64 // low-TP controller availability

	// Counters (reset at warmup boundary).
	instrBase   uint64
	cyclesBase  float64
	llcAccesses uint64
	llcMisses   uint64
	issued      uint64
	lateUseful  uint64
	dropped     uint64

	accessIdx int

	// Telemetry (all nil/zero when no collector is attached; the
	// instrument handles are nil-safe, so the disabled cost is one nil
	// check per call site).
	tel        *telemetry.Collector
	probe      telemetry.ControllerProbe
	winSize    int
	win        telemetry.SimWindow
	winInstrID uint64 // rec.ID at the window start
	winCycles  float64

	// Per-window accumulators for counters that are not part of the
	// snapshot. All registry counters are fed from these plain fields at
	// window boundaries (flushCounters) instead of atomically on every
	// event, keeping the instrumented hot path within its overhead
	// budget (see BenchmarkSimulatorTelemetry).
	winDups       uint64
	winDRAMReqs   uint64
	winMSHRStalls uint64

	cHits, cMisses, cLateHits  *telemetry.Counter
	cUseful, cIssued, cDropped *telemetry.Counter
	cDup, cDRAMReq, cMSHRStall *telemetry.Counter
	hOccupancy                 *telemetry.Histogram
}

// AttachTelemetry wires the simulator to a collector: registry
// counters for the memory-system events, per-window snapshot emission,
// and sampled event tracing. A nil collector detaches.
func (s *Simulator) AttachTelemetry(tel *telemetry.Collector) {
	s.tel = tel
	s.winSize = tel.WindowSize()
	r := tel.Registry()
	s.cHits = r.Counter("sim.llc.hits")
	s.cMisses = r.Counter("sim.llc.misses")
	s.cLateHits = r.Counter("sim.llc.late_hits")
	s.cUseful = r.Counter("sim.llc.useful_prefetches")
	s.cIssued = r.Counter("sim.prefetch.issued")
	s.cDropped = r.Counter("sim.prefetch.dropped")
	s.cDup = r.Counter("sim.prefetch.duplicates")
	s.cDRAMReq = r.Counter("sim.dram.requests")
	s.cMSHRStall = r.Counter("sim.dram.mshr_stalls")
	s.hOccupancy = r.Histogram("sim.dram.mshr_occupancy")
}

// New builds a simulator; it panics on invalid configuration.
func New(cfg Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.MaxDegree <= 0 {
		cfg.MaxDegree = 1
	}
	s := &Simulator{cfg: cfg}
	s.l1d = cache.New(cfg.L1D)
	s.l2 = cache.New(cfg.L2)
	s.llc = cache.New(cfg.LLC)
	s.pendingSet = flatmap.New(64)
	s.mshr = make([]float64, 0, cfg.LLC.MSHRs)
	// The ROB queue holds at most one entry per id in a ROB-sized window
	// plus the retained predecessor and the just-appended record; sizing
	// it up front means the append in step never grows it.
	s.robQ = make([]loadRetire, 0, cfg.ROB+2)
	s.pending = make([]pendingFill, 0, 64)
	return s
}

// resetMeasurement marks the warmup boundary.
func (s *Simulator) resetMeasurement(firstID uint64) {
	s.instrBase = firstID
	s.cyclesBase = s.retireClock()
	s.l1d.ResetStats()
	s.l2.ResetStats()
	s.llc.ResetStats()
	s.llcAccesses = 0
	s.llcMisses = 0
	s.issued = 0
	s.lateUseful = 0
	s.dropped = 0
}

// retireClock returns the current end-of-execution estimate.
func (s *Simulator) retireClock() float64 {
	if s.retire > s.dispatch {
		return s.retire
	}
	return s.dispatch
}

// step processes one trace record through timing, hierarchy and
// prefetching.
func (s *Simulator) step(rec trace.Record, src Source) {
	w := float64(s.cfg.IssueWidth)

	// Dispatch: advance by the instruction gap, bounded by ROB space.
	gapInstr := float64(rec.ID - s.lastID)
	dispatch := s.dispatch + gapInstr/w
	// ROB constraint: instruction rec.ID dispatches only after
	// instruction rec.ID-ROB has retired.
	if rec.ID >= uint64(s.cfg.ROB) {
		if rt, ok := s.retireTimeOf(rec.ID - uint64(s.cfg.ROB)); ok && rt > dispatch {
			dispatch = rt
		}
	}

	// Commit prefetch fills that have landed by now.
	s.commitFills(dispatch)

	// Access the hierarchy.
	idxBefore := s.accessIdx
	lat := s.access(rec, dispatch, src)

	completion := dispatch + lat
	// In-order retire at the issue width.
	retire := s.retire + gapInstr/w
	if completion > retire {
		retire = completion
	}

	s.dispatch = dispatch
	s.retire = retire
	if s.winSize > 0 && s.accessIdx != idxBefore {
		s.windowTick(rec)
	}
	s.lastID = rec.ID
	if len(s.robQ) == cap(s.robQ) && s.robHead > 0 {
		n := copy(s.robQ, s.robQ[s.robHead:])
		s.robQ = s.robQ[:n]
		s.robHead = 0
	}
	s.robQ = append(s.robQ, loadRetire{id: rec.ID, retire: retire})
	// Trim entries older than one ROB window behind.
	for len(s.robQ)-s.robHead > 1 && s.robQ[s.robHead+1].id+uint64(s.cfg.ROB) <= rec.ID {
		s.robHead++
	}
}

// retireTimeOf estimates the retire time of instruction id using the
// retire times of recorded loads: non-load instructions retire at the
// issue width after the closest preceding load. The queue is sorted by
// id, so the last load with id <= target is found by binary search (the
// linear backwards scan this replaces was O(ROB) per step).
func (s *Simulator) retireTimeOf(id uint64) (float64, bool) {
	lo, hi := s.robHead, len(s.robQ)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.robQ[mid].id <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == s.robHead {
		return 0, false
	}
	best := &s.robQ[lo-1]
	return best.retire + float64(id-best.id)/float64(s.cfg.IssueWidth), true
}

// access runs one demand access through L1D/L2/LLC/DRAM and returns its
// load-to-use latency in cycles. It also drives the prefetch source on
// LLC accesses.
func (s *Simulator) access(rec trace.Record, now float64, src Source) float64 {
	line := rec.Line()
	if hit, _ := s.l1d.Access(line); hit {
		return float64(s.cfg.L1D.Latency)
	}
	if hit, _ := s.l2.Access(line); hit {
		s.l1d.Insert(line, false)
		return float64(s.cfg.L2.Latency)
	}

	// LLC access: this is the stream prefetchers observe.
	s.accessIdx++
	s.llcAccesses++
	s.win.Accesses++
	hit, firstUse := s.llc.Access(line)
	var lat float64
	kind := telemetry.KindMiss
	switch {
	case hit:
		lat = float64(s.cfg.LLC.Latency)
		kind = telemetry.KindHit
		s.win.Hits++
	default:
		if fv, ok := s.pendingSet.Get(line); ok {
			// Late prefetch: the line is in flight; wait for the
			// remaining latency (at least an LLC hit's worth).
			s.lateUseful++
			remaining := math.Float64frombits(fv) - now
			if remaining < float64(s.cfg.LLC.Latency) {
				remaining = float64(s.cfg.LLC.Latency)
			}
			lat = remaining
			s.removePending(line)
			s.llc.Insert(line, false)
			kind = telemetry.KindLateHit
			s.win.LateHits++
			s.win.Useful++
		} else {
			// True miss: go to DRAM under MSHR and bandwidth bounds.
			s.llcMisses++
			start := s.dramIssue(now)
			lat = (start - now) + float64(s.cfg.LLC.Latency) + float64(s.cfg.DRAMLatency)
			s.llc.Insert(line, false)
			s.win.Misses++
		}
	}
	if firstUse {
		// First demand use of a prefetched line: the prefetch paid off.
		s.win.Useful++
	}
	if s.tel != nil {
		s.tel.Trace(telemetry.Event{
			Seq: uint64(s.accessIdx), Cycle: now, Kind: kind,
			PC: rec.PC, Addr: uint64(rec.Addr),
		})
	}
	s.l2.Insert(line, false)
	s.l1d.Insert(line, false)

	if src != nil {
		ctx := prefetch.AccessContext{
			Index:       s.accessIdx,
			ID:          rec.ID,
			PC:          rec.PC,
			Addr:        rec.Addr,
			Line:        line,
			Hit:         hit,
			PrefetchHit: firstUse,
		}
		s.issuePrefetches(src.OnAccess(ctx), now)
	}
	return lat
}

// dramIssue reserves a DRAM request slot at or after now, honouring
// MSHR occupancy and the inter-request interval, and returns the issue
// time.
func (s *Simulator) dramIssue(now float64) float64 {
	start := now
	if start < s.dramNextFree {
		start = s.dramNextFree
	}
	if len(s.mshr)-s.mshrHead >= s.cfg.LLC.MSHRs {
		// Wait for the oldest outstanding request (FIFO completion
		// order holds because latency is constant).
		oldest := s.mshr[s.mshrHead]
		s.mshrHead++
		if oldest > start {
			start = oldest
		}
		s.winMSHRStalls++
		if s.tel != nil {
			s.tel.Trace(telemetry.Event{Seq: uint64(s.accessIdx), Cycle: start, Kind: telemetry.KindMSHRStall})
		}
	}
	// Drop completed entries from the front.
	for len(s.mshr) > s.mshrHead && s.mshr[s.mshrHead] <= start {
		s.mshrHead++
	}
	if len(s.mshr) == cap(s.mshr) && s.mshrHead > 0 {
		n := copy(s.mshr, s.mshr[s.mshrHead:])
		s.mshr = s.mshr[:n]
		s.mshrHead = 0
	}
	s.mshr = append(s.mshr, start+float64(s.cfg.DRAMLatency))
	s.dramNextFree = start + float64(s.cfg.DRAMInterval)
	s.winDRAMReqs++
	// Queue occupancy is sampled deterministically 1-in-8: the
	// histogram's mutex is too expensive for every request, and the
	// occupancy distribution survives uniform decimation.
	if s.winDRAMReqs&7 == 0 {
		s.hOccupancy.Observe(float64(len(s.mshr) - s.mshrHead))
	}
	return start
}

// issuePrefetches sends the source's suggestions to memory, modelling
// inference latency and the low-throughput controller.
func (s *Simulator) issuePrefetches(lines []mem.Line, now float64) {
	n := 0
	for _, line := range lines {
		if n >= s.cfg.MaxDegree {
			break
		}
		if s.cfg.LowThroughput && s.cfg.PrefetchLatency > 0 {
			if now < s.ctrlBusyTill {
				s.dropped++
				s.win.Dropped++
				if s.tel != nil {
					s.tel.Trace(telemetry.Event{Seq: uint64(s.accessIdx), Cycle: now, Kind: telemetry.KindPrefetchDrop, Addr: uint64(mem.LineAddr(line))})
				}
				continue
			}
			s.ctrlBusyTill = now + float64(s.cfg.PrefetchLatency)
		}
		n++
		if s.llc.Contains(line) {
			s.winDups++
			continue
		}
		if s.pendingSet.Contains(line) {
			s.winDups++
			continue
		}
		issue := now + float64(s.cfg.PrefetchLatency)
		start := s.dramIssue(issue)
		fill := start + float64(s.cfg.DRAMLatency) + float64(s.cfg.LLC.Latency)
		s.issued++
		s.win.Issued++
		if s.tel != nil {
			s.tel.Trace(telemetry.Event{Seq: uint64(s.accessIdx), Cycle: start, Kind: telemetry.KindPrefetchIssue, Addr: uint64(mem.LineAddr(line))})
		}
		if len(s.pending) == cap(s.pending) && s.pendHead > 0 {
			n := copy(s.pending, s.pending[s.pendHead:])
			s.pending = s.pending[:n]
			s.pendHead = 0
		}
		s.pending = append(s.pending, pendingFill{line: line, fill: fill})
		s.pendingSet.Set(line, math.Float64bits(fill))
	}
}

// commitFills inserts landed prefetches into the LLC.
func (s *Simulator) commitFills(now float64) {
	i := s.pendHead
	for ; i < len(s.pending); i++ {
		p := s.pending[i]
		if p.fill > now {
			break
		}
		if !s.pendingSet.Delete(p.line) {
			continue // consumed early as a late prefetch hit
		}
		s.llc.Insert(p.line, true)
		if s.tel != nil {
			s.tel.Trace(telemetry.Event{Seq: uint64(s.accessIdx), Cycle: p.fill, Kind: telemetry.KindFill, Addr: uint64(mem.LineAddr(p.line))})
		}
	}
	s.pendHead = i
}

// windowTick advances the snapshot window after an LLC access and
// emits a WindowSnapshot every winSize accesses. Windows cover the
// whole run (warmup included): the learning trajectory the snapshots
// exist to expose starts at access zero.
func (s *Simulator) windowTick(rec trace.Record) {
	if int(s.win.Accesses) < s.winSize {
		return
	}
	clock := s.retireClock()
	s.win.Instructions = rec.ID - s.winInstrID
	s.win.Cycles = clock - s.winCycles
	s.tel.EmitWindow(s.win, s.probe)
	s.flushCounters()
	s.win = telemetry.SimWindow{}
	s.winInstrID = rec.ID
	s.winCycles = clock
}

// flushCounters feeds the window's accumulated event counts into the
// registry counters in one atomic Add each, so the per-event hot path
// never touches an atomic. Called at window boundaries and at the end
// of the run (the trailing partial window reaches the counters even
// though no snapshot is emitted for it).
func (s *Simulator) flushCounters() {
	s.cHits.Add(s.win.Hits)
	s.cMisses.Add(s.win.Misses)
	s.cLateHits.Add(s.win.LateHits)
	s.cUseful.Add(s.win.Useful)
	s.cIssued.Add(s.win.Issued)
	s.cDropped.Add(s.win.Dropped)
	s.cDup.Add(s.winDups)
	s.cDRAMReq.Add(s.winDRAMReqs)
	s.cMSHRStall.Add(s.winMSHRStalls)
	s.winDups, s.winDRAMReqs, s.winMSHRStalls = 0, 0, 0
}

func (s *Simulator) removePending(line mem.Line) {
	s.pendingSet.Delete(line)
	// The slice entry stays; commitFills skips consumed entries.
}

// result assembles the measured-region metrics.
func (s *Simulator) result(tr *trace.Trace, src Source) Result {
	r := Result{
		Workload: tr.Name,
		Source:   "none",
		Caches: map[string]cache.Stats{
			"L1D": s.l1d.Stats(),
			"L2":  s.l2.Stats(),
			"LLC": s.llc.Stats(),
		},
	}
	if src != nil {
		r.Source = src.Name()
	}
	r.Instructions = tr.Instructions() - s.instrBase
	r.Cycles = s.retireClock() - s.cyclesBase
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / r.Cycles
	}
	r.LLCAccesses = s.llcAccesses
	r.LLCMisses = s.llcMisses
	r.PrefetchesIssued = s.issued
	r.LatePrefetchHits = s.lateUseful
	r.DroppedPrefetches = s.dropped
	r.UsefulPrefetches = s.llc.Stats().UsefulPrefetch + s.lateUseful
	if r.PrefetchesIssued > 0 {
		r.Accuracy = float64(r.UsefulPrefetches) / float64(r.PrefetchesIssued)
		// Prefetches issued during warmup but consumed after the reset
		// can push the ratio over 1; clamp at the boundary.
		if r.Accuracy > 1 {
			r.Accuracy = 1
		}
	}
	if tot := r.UsefulPrefetches + r.LLCMisses; tot > 0 {
		r.Coverage = float64(r.UsefulPrefetches) / float64(tot)
	}
	if r.Instructions > 0 {
		r.MPKI = float64(r.LLCMisses) * 1000 / float64(r.Instructions)
	}
	return r
}

// FromPrefetcher adapts an individual prefetcher to the Source
// interface, issuing up to degree of its suggestions per access.
func FromPrefetcher(p prefetch.Prefetcher, degree int) Source {
	if degree <= 0 {
		degree = 1
	}
	return &prefetcherSource{p: p, degree: degree}
}

type prefetcherSource struct {
	p      prefetch.Prefetcher
	degree int
	buf    []mem.Line

	accesses uint64
	issuing  uint64 // accesses with at least one suggestion
	lines    uint64 // lines issued
}

func (ps *prefetcherSource) Name() string { return ps.p.Name() }

func (ps *prefetcherSource) OnAccess(a prefetch.AccessContext) []mem.Line {
	ps.buf = ps.buf[:0]
	for i, sug := range ps.p.Observe(a) {
		if i >= ps.degree {
			break
		}
		ps.buf = append(ps.buf, sug.Line)
	}
	ps.accesses++
	if len(ps.buf) > 0 {
		ps.issuing++
		ps.lines += uint64(len(ps.buf))
	}
	return ps.buf
}

// AttachTelemetry implements telemetry.Attachable by forwarding to the
// adapted prefetcher when it is itself attachable (e.g. the fault
// injection wrapper).
func (ps *prefetcherSource) AttachTelemetry(t *telemetry.Collector) {
	if a, ok := ps.p.(telemetry.Attachable); ok {
		a.AttachTelemetry(t)
	}
}

func (ps *prefetcherSource) Reset() {
	ps.p.Reset()
	ps.accesses, ps.issuing, ps.lines = 0, 0, 0
}

// TelemetryStats implements telemetry.ControllerProbe for a solo
// prefetcher: a one-arm action space whose count is the accesses it
// actually suggested on (usefulness is attributed by the simulator's
// window counters, not here).
func (ps *prefetcherSource) TelemetryStats() telemetry.ControllerStats {
	return telemetry.ControllerStats{
		Steps:        int(ps.accesses),
		ActionNames:  []string{ps.p.Name()},
		ActionCounts: []uint64{ps.issuing},
		ArmIssued:    []uint64{ps.lines},
	}
}
