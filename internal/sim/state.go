package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"resemble/internal/checkpoint"
	"resemble/internal/flatmap"
	"resemble/internal/mem"
	"resemble/internal/telemetry"
)

// Checkpointing (checkpoint.Stater) for the simulator and the solo
// prefetcher adapter. The snapshot carries the complete timing,
// hierarchy and counter state — including the per-window accumulators
// that have not been flushed to the registry yet — so a resumed run
// continues the event stream exactly where the interrupted one stopped.

// simState is the gob mirror of Simulator's mutable state. pendingSet
// is saved independently of pending: a late prefetch hit removes a
// line from the set but leaves its (now inert) slice entry behind.
type simState struct {
	Dispatch float64
	Retire   float64
	LastID   uint64

	MSHR         []float64
	DRAMNextFree float64

	RobIDs     []uint64
	RobRetires []float64

	PendingLines []mem.Line
	PendingFills []float64
	SetLines     []mem.Line
	SetFills     []float64
	CtrlBusyTill float64

	InstrBase   uint64
	CyclesBase  float64
	LLCAccesses uint64
	LLCMisses   uint64
	Issued      uint64
	LateUseful  uint64
	Dropped     uint64

	AccessIdx int

	Win        telemetry.SimWindow
	WinInstrID uint64
	WinCycles  float64

	WinDups       uint64
	WinDRAMReqs   uint64
	WinMSHRStalls uint64

	L1D, L2, LLC []byte
}

// SaveState implements checkpoint.Stater.
func (s *Simulator) SaveState(w io.Writer) error {
	st := simState{
		Dispatch: s.dispatch, Retire: s.retire, LastID: s.lastID,
		DRAMNextFree: s.dramNextFree,
		CtrlBusyTill: s.ctrlBusyTill,
		InstrBase:    s.instrBase, CyclesBase: s.cyclesBase,
		LLCAccesses: s.llcAccesses, LLCMisses: s.llcMisses,
		Issued: s.issued, LateUseful: s.lateUseful, Dropped: s.dropped,
		AccessIdx: s.accessIdx,
		Win:       s.win, WinInstrID: s.winInstrID, WinCycles: s.winCycles,
		WinDups: s.winDups, WinDRAMReqs: s.winDRAMReqs, WinMSHRStalls: s.winMSHRStalls,
	}
	// Only the live (head-onward) regions of the FIFO queues are part of
	// the run state; the head offsets themselves are an in-memory layout
	// detail, so snapshots stay byte-compatible with earlier versions.
	st.MSHR = s.mshr[s.mshrHead:]
	for _, lr := range s.robQ[s.robHead:] {
		st.RobIDs = append(st.RobIDs, lr.id)
		st.RobRetires = append(st.RobRetires, lr.retire)
	}
	for _, p := range s.pending[s.pendHead:] {
		st.PendingLines = append(st.PendingLines, p.line)
		st.PendingFills = append(st.PendingFills, p.fill)
	}
	s.pendingSet.Range(func(line, fv uint64) bool {
		st.SetLines = append(st.SetLines, line)
		st.SetFills = append(st.SetFills, math.Float64frombits(fv))
		return true
	})
	for _, cs := range []struct {
		c   checkpoint.Stater
		dst *[]byte
	}{{s.l1d, &st.L1D}, {s.l2, &st.L2}, {s.llc, &st.LLC}} {
		var buf bytes.Buffer
		if err := cs.c.SaveState(&buf); err != nil {
			return err
		}
		*cs.dst = buf.Bytes()
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadState implements checkpoint.Stater; the payload is fully decoded
// and the cache geometries validated before anything is installed.
func (s *Simulator) LoadState(r io.Reader) error {
	var st simState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("sim state: %w", err)
	}
	if len(st.RobIDs) != len(st.RobRetires) {
		return fmt.Errorf("sim state: mismatched ROB lengths")
	}
	if len(st.PendingLines) != len(st.PendingFills) || len(st.SetLines) != len(st.SetFills) {
		return fmt.Errorf("sim state: mismatched pending lengths")
	}
	// Cache loads validate geometry and leave the caches untouched on
	// error; they go first so any failure aborts before the timing state
	// is replaced.
	if err := s.l1d.LoadState(bytes.NewReader(st.L1D)); err != nil {
		return err
	}
	if err := s.l2.LoadState(bytes.NewReader(st.L2)); err != nil {
		return err
	}
	if err := s.llc.LoadState(bytes.NewReader(st.LLC)); err != nil {
		return err
	}
	s.dispatch, s.retire, s.lastID = st.Dispatch, st.Retire, st.LastID
	s.mshr = append(s.mshr[:0], st.MSHR...)
	s.mshrHead = 0
	s.dramNextFree = st.DRAMNextFree
	s.robQ = s.robQ[:0]
	s.robHead = 0
	for i := range st.RobIDs {
		s.robQ = append(s.robQ, loadRetire{id: st.RobIDs[i], retire: st.RobRetires[i]})
	}
	s.pending = s.pending[:0]
	s.pendHead = 0
	for i := range st.PendingLines {
		s.pending = append(s.pending, pendingFill{line: st.PendingLines[i], fill: st.PendingFills[i]})
	}
	s.pendingSet = flatmap.New(len(st.SetLines))
	for i := range st.SetLines {
		s.pendingSet.Set(st.SetLines[i], math.Float64bits(st.SetFills[i]))
	}
	s.ctrlBusyTill = st.CtrlBusyTill
	s.instrBase, s.cyclesBase = st.InstrBase, st.CyclesBase
	s.llcAccesses, s.llcMisses = st.LLCAccesses, st.LLCMisses
	s.issued, s.lateUseful, s.dropped = st.Issued, st.LateUseful, st.Dropped
	s.accessIdx = st.AccessIdx
	s.win, s.winInstrID, s.winCycles = st.Win, st.WinInstrID, st.WinCycles
	s.winDups, s.winDRAMReqs, s.winMSHRStalls = st.WinDups, st.WinDRAMReqs, st.WinMSHRStalls
	return nil
}

// prefetcherSourceState mirrors the adapter's counters; the wrapped
// prefetcher's state is nested.
type prefetcherSourceState struct {
	Accesses uint64
	Issuing  uint64
	Lines    uint64
	Inner    []byte
}

// SaveState implements checkpoint.Stater; the adapted prefetcher must
// itself be checkpointable.
func (ps *prefetcherSource) SaveState(w io.Writer) error {
	st, ok := ps.p.(checkpoint.Stater)
	if !ok {
		return fmt.Errorf("sim: prefetcher %q does not support checkpointing", ps.p.Name())
	}
	var buf bytes.Buffer
	if err := st.SaveState(&buf); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(prefetcherSourceState{
		Accesses: ps.accesses, Issuing: ps.issuing, Lines: ps.lines,
		Inner: buf.Bytes(),
	})
}

// LoadState implements checkpoint.Stater.
func (ps *prefetcherSource) LoadState(r io.Reader) error {
	st, ok := ps.p.(checkpoint.Stater)
	if !ok {
		return fmt.Errorf("sim: prefetcher %q does not support checkpointing", ps.p.Name())
	}
	var dec prefetcherSourceState
	if err := gob.NewDecoder(r).Decode(&dec); err != nil {
		return fmt.Errorf("sim source state: %w", err)
	}
	if err := st.LoadState(bytes.NewReader(dec.Inner)); err != nil {
		return err
	}
	ps.accesses, ps.issuing, ps.lines = dec.Accesses, dec.Issuing, dec.Lines
	return nil
}
