package core

import (
	"testing"

	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
)

// explainDrive attaches a sample-every-decision collector, drives the
// controller, and returns the emitted decision records.
func explainDrive(t *testing.T, ctrl interface {
	OnAccess(prefetch.AccessContext) []mem.Line
	RewardSeries() []float64
	ActionSeries() []int8
	AttachTelemetry(*telemetry.Collector)
}, steps int) []telemetry.Decision {
	t.Helper()
	tel, err := telemetry.New(telemetry.Config{ExplainSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachTelemetry(tel)
	driveLoop(t, ctrl, makeLoop(64), steps)
	return tel.Decisions()
}

// checkDecisions pins the explainability contract: every record's
// chosen arm matches the action the controller actually recorded at
// that decision seq, the Q vector covers the action space, and only
// resolved (rewarded) decisions are emitted.
func checkDecisions(t *testing.T, ds []telemetry.Decision, acts []int8, names []string, steps int) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatal("no decisions recorded at ExplainSample=1")
	}
	// Rewards resolve one access later; at most the last in-flight
	// decisions may still be pending when the run stops.
	if len(ds) < steps-8 {
		t.Errorf("recorded %d decisions over %d steps; sampling every decision should capture nearly all", len(ds), steps)
	}
	for _, d := range ds {
		if d.Seq >= uint64(len(acts)) {
			t.Fatalf("decision seq %d outside action series (len %d)", d.Seq, len(acts))
		}
		if got, want := d.Action, int(acts[d.Seq]); got != want {
			t.Errorf("decision %d: recorded action %d, controller acted %d", d.Seq, got, want)
		}
		if d.Action < 0 || d.Action >= len(names) {
			t.Fatalf("decision %d: action %d outside arm space %v", d.Seq, d.Action, names)
		}
		if d.ActionName != names[d.Action] {
			t.Errorf("decision %d: action name %q, want %q", d.Seq, d.ActionName, names[d.Action])
		}
		if len(d.Q) != len(names) {
			t.Errorf("decision %d: %d Q-values for %d arms", d.Seq, len(d.Q), len(names))
		}
		if d.Epsilon < 0 || d.Epsilon > 1 {
			t.Errorf("decision %d: epsilon %v outside [0,1]", d.Seq, d.Epsilon)
		}
		if !d.Resolved {
			t.Errorf("decision %d emitted without a resolved reward", d.Seq)
		}
	}
}

func TestDQNExplainDecisions(t *testing.T) {
	seq := makeLoop(64)
	c := NewController(testConfig(), []prefetch.Prefetcher{
		garbage("g1", true),
		oracle("oracle", false, seq),
	})
	const steps = 2000
	ds := explainDrive(t, c, steps)
	checkDecisions(t, ds, c.ActionSeries(), c.ActionNames(), steps)
	// The DQN view must carry the state features it acted on.
	for _, d := range ds {
		if len(d.State) == 0 {
			t.Fatalf("decision %d: DQN record has no state vector", d.Seq)
		}
	}
}

func TestTabularExplainDecisions(t *testing.T) {
	seq := makeLoop(64)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{
		garbage("g1", true),
		oracle("oracle", false, seq),
	})
	const steps = 2000
	ds := explainDrive(t, c, steps)
	checkDecisions(t, ds, c.ActionSeries(), c.ActionNames(), steps)
}

// TestExplainSamplingRate: 1-in-N sampling must emit ~steps/N records,
// deterministically.
func TestExplainSamplingRate(t *testing.T) {
	seq := makeLoop(64)
	run := func() int {
		c := NewTabularController(testConfig(), []prefetch.Prefetcher{garbage("g1", true), oracle("oracle", false, seq)})
		tel, err := telemetry.New(telemetry.Config{ExplainSample: 64})
		if err != nil {
			t.Fatal(err)
		}
		c.AttachTelemetry(tel)
		driveLoop(t, c, seq, 2000)
		return len(tel.Decisions())
	}
	n1, n2 := run(), run()
	if n1 != n2 {
		t.Errorf("sampled decision counts differ across identical runs: %d vs %d", n1, n2)
	}
	if n1 < 2000/64-2 || n1 > 2000/64+2 {
		t.Errorf("1-in-64 sampling over 2000 steps emitted %d records, want ~%d", n1, 2000/64)
	}
}

// TestExplainDisabled: with sampling off no records accumulate.
func TestExplainDisabled(t *testing.T) {
	seq := makeLoop(64)
	c := NewController(testConfig(), []prefetch.Prefetcher{garbage("g1", true)})
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.AttachTelemetry(tel)
	driveLoop(t, c, seq, 500)
	if n := len(tel.Decisions()); n != 0 {
		t.Errorf("explain disabled but %d decisions recorded", n)
	}
}
