package core

import (
	"math"
	"testing"

	"resemble/internal/mem"
	"resemble/internal/prefetch"
)

// fakePF is a scriptable prefetcher for controller tests.
type fakePF struct {
	name    string
	spatial bool
	fn      func(prefetch.AccessContext) []prefetch.Suggestion
}

func (f *fakePF) Name() string  { return f.name }
func (f *fakePF) Spatial() bool { return f.spatial }
func (f *fakePF) Reset()        {}
func (f *fakePF) Observe(a prefetch.AccessContext) []prefetch.Suggestion {
	if f.fn == nil {
		return nil
	}
	return f.fn(a)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := []func(*Config){
		func(c *Config) { c.HashBits = 0 },
		func(c *Config) { c.TableHashBits = 17 },
		func(c *Config) { c.ReplayN = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.Batch = -1 },
		func(c *Config) { c.PolicyInterval = 0 },
		func(c *Config) { c.PolicyInterval = 50 }, // > TargetInterval
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Gamma = 1.0 },
		func(c *Config) { c.EpsDecay = 0 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEpsilonDecay(t *testing.T) {
	c := DefaultConfig()
	if got := c.epsilon(0); math.Abs(got-c.EpsStart) > 1e-9 {
		t.Errorf("epsilon(0) = %v, want %v", got, c.EpsStart)
	}
	prev := c.epsilon(0)
	for _, step := range []int{10, 50, 100, 500, 5000} {
		e := c.epsilon(step)
		if e > prev {
			t.Errorf("epsilon increased at step %d", step)
		}
		prev = e
	}
	if got := c.epsilon(1 << 20); math.Abs(got-c.EpsEnd) > 1e-6 {
		t.Errorf("epsilon(inf) = %v, want %v", got, c.EpsEnd)
	}
}

func TestStateVector(t *testing.T) {
	cur := mem.Addr(100 * mem.PageSize)
	obs := []Observation{
		{Line: mem.LineOf(cur) + 4, Valid: true, Spatial: true}, // +4 lines = 256 bytes
		{Valid: false, Spatial: true},                           // padding
		{Line: 0x123456789a >> mem.BlockBits, Valid: true},      // temporal
	}
	s := StateVector(nil, obs, cur, 0x400, 16, false)
	if len(s) != 3 {
		t.Fatalf("state size %d, want 3", len(s))
	}
	want := float64(4*mem.LineSize) / float64(mem.PageSize)
	if math.Abs(s[0]-want) > 1e-12 {
		t.Errorf("spatial element = %v, want %v", s[0], want)
	}
	if s[1] != 0 {
		t.Errorf("padding element = %v, want 0", s[1])
	}
	if s[2] < 0 || s[2] >= 1 {
		t.Errorf("temporal element %v out of [0,1)", s[2])
	}
	// With PC appended.
	s = StateVector(s, obs, cur, 0x400, 16, true)
	if len(s) != 4 {
		t.Fatalf("state size with PC = %d, want 4", len(s))
	}
	if s[3] < 0 || s[3] >= 1 {
		t.Errorf("PC element %v out of [0,1)", s[3])
	}
}

func TestStateVectorNegativeDelta(t *testing.T) {
	cur := mem.Addr(100 * mem.PageSize)
	obs := []Observation{{Line: mem.LineOf(cur) - 2, Valid: true, Spatial: true}}
	s := StateVector(nil, obs, cur, 0, 16, false)
	want := float64(2*mem.LineSize) / float64(mem.PageSize)
	if math.Abs(s[0]-want) > 1e-12 {
		t.Errorf("abs delta = %v, want %v", s[0], want)
	}
}

func TestTabularKey(t *testing.T) {
	cur := mem.Addr(50 * mem.PageSize)
	a := []Observation{
		{Line: mem.LineOf(cur) + 1, Valid: true, Spatial: true},
		{Line: 0xABCDE, Valid: true},
	}
	b := []Observation{
		{Line: mem.LineOf(cur) + 2, Valid: true, Spatial: true},
		{Line: 0xABCDE, Valid: true},
	}
	ka := TabularKey(a, cur, 0, 8, false)
	kb := TabularKey(b, cur, 0, 8, false)
	if ka == kb {
		t.Error("different spatial deltas produced equal keys")
	}
	// Same observations -> same key.
	if ka != TabularKey(a, cur, 0, 8, false) {
		t.Error("key not deterministic")
	}
	// PC changes the key when enabled.
	if TabularKey(a, cur, 0x400, 8, true) == TabularKey(a, cur, 0x404, 8, true) {
		t.Error("PC not reflected in key")
	}
	// Overflow must panic.
	defer func() {
		if recover() == nil {
			t.Error("oversized key did not panic")
		}
	}()
	wide := make([]Observation, 9)
	TabularKey(wide, cur, 0, 8, false)
}

func TestCollectObservationsSpatialFirst(t *testing.T) {
	temporal := &fakePF{name: "t1", fn: func(prefetch.AccessContext) []prefetch.Suggestion {
		return []prefetch.Suggestion{{Line: 111}}
	}}
	spatial := &fakePF{name: "s1", spatial: true, fn: func(prefetch.AccessContext) []prefetch.Suggestion {
		return []prefetch.Suggestion{{Line: 222}}
	}}
	empty := &fakePF{name: "s2", spatial: true}
	pfs := []prefetch.Prefetcher{temporal, spatial, empty}
	obs, order := CollectObservations(pfs, prefetch.AccessContext{}, nil, nil)
	if len(obs) != 3 {
		t.Fatalf("got %d observations", len(obs))
	}
	if !obs[0].Spatial || obs[0].Line != 222 || order[0] != 1 {
		t.Errorf("first observation should be the spatial prefetcher: %+v order %v", obs[0], order)
	}
	if !obs[1].Spatial || obs[1].Valid {
		t.Errorf("second observation should be the empty spatial pad: %+v", obs[1])
	}
	if obs[2].Spatial || obs[2].Line != 111 || order[2] != 0 {
		t.Errorf("third observation should be the temporal prefetcher: %+v", obs[2])
	}
}

func TestRewardTrackerHitAndExpiry(t *testing.T) {
	tr := NewRewardTracker(10)
	tr.Add(0, 100)
	tr.Add(1, 200)
	hits, exp := tr.Resolve(2, 100, nil, nil)
	if len(hits) != 1 || hits[0] != 0 || len(exp) != 0 {
		t.Errorf("hits=%v exp=%v, want hit seq 0", hits, exp)
	}
	// Seq 1 expires once the window passes.
	hits, exp = tr.Resolve(11, 999, hits, exp)
	if len(hits) != 0 || len(exp) != 1 || exp[0] != 1 {
		t.Errorf("hits=%v exp=%v, want expiry of seq 1", hits, exp)
	}
	if tr.Pending() != 0 {
		t.Errorf("pending = %d, want 0", tr.Pending())
	}
}

func TestRewardTrackerMultipleMatches(t *testing.T) {
	tr := NewRewardTracker(100)
	tr.Add(0, 7)
	tr.Add(1, 7)
	hits, _ := tr.Resolve(2, 7, nil, nil)
	if len(hits) != 2 {
		t.Errorf("both windowed prefetches of the same line should hit: %v", hits)
	}
}

func TestRewardTrackerWindowBoundary(t *testing.T) {
	tr := NewRewardTracker(5)
	tr.Add(0, 50)
	// At curSeq 4 the prefetch is still in the window.
	if _, exp := tr.Resolve(4, 0, nil, nil); len(exp) != 0 {
		t.Errorf("expired early: %v", exp)
	}
	// At curSeq 5 it has aged out (0+5 <= 5).
	if _, exp := tr.Resolve(5, 0, nil, nil); len(exp) != 1 {
		t.Errorf("did not expire at boundary: %v", exp)
	}
}

func TestReplayLifecycle(t *testing.T) {
	r := NewReplay(4)
	for seq := 0; seq < 3; seq++ {
		r.Push(Transition{Seq: seq, State: []float64{float64(seq)}, Action: seq % 2})
	}
	if r.Len() != 3 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
	if got := r.Get(1); got == nil || got.State[0] != 1 {
		t.Fatalf("Get(1) = %+v", got)
	}
	if r.CountValid() != 0 {
		t.Error("nothing should be valid yet")
	}
	r.SetNext(1, []float64{9})
	r.SetReward(1, -1)
	if r.CountValid() != 1 {
		t.Errorf("CountValid = %d, want 1", r.CountValid())
	}
	// Overwrite wraps: seq 4 replaces seq 0.
	r.Push(Transition{Seq: 3}) // fill
	r.Push(Transition{Seq: 4})
	if r.Get(0) != nil {
		t.Error("overwritten transition still retrievable")
	}
	if got := r.Get(4); got == nil {
		t.Error("wrapped transition missing")
	}
	// Setting reward on an overwritten transition must be a no-op.
	r.SetReward(0, 1)
	if got := r.Get(4); got.HasReward {
		t.Error("stale reward landed on the wrong transition")
	}
}

func TestReplaySampleValidOnlyValid(t *testing.T) {
	r := NewReplay(16)
	for seq := 0; seq < 16; seq++ {
		tr := Transition{Seq: seq, State: []float64{1}}
		r.Push(tr)
		if seq%2 == 0 {
			r.SetNext(seq, []float64{2})
			r.SetReward(seq, 1)
		}
	}
	rng := newTestRand()
	got := r.SampleValid(rng, 64, nil)
	if len(got) == 0 {
		t.Fatal("no samples")
	}
	for _, tr := range got {
		if !tr.Valid() {
			t.Fatal("sampled an invalid transition")
		}
	}
}

func TestModelSizesTable4(t *testing.T) {
	sizes := ModelSizes(4, 5, 100, []uint{4, 8}, map[uint]int{4: 3730, 8: 59200})
	byKey := map[string]float64{}
	for _, s := range sizes {
		byKey[s.Model+"/"+s.Config] = s.Entries
	}
	if got := byKey["MLP/H = 100"]; got != 1005 {
		t.Errorf("MLP params = %v, want 1005 (paper: 1.05K)", got)
	}
	if got := byKey["Table (direct)/B = 4"]; got != math.Pow(2, 16)*5 {
		t.Errorf("direct table B=4 = %v, want 2^16*5 (paper: 328K)", got)
	}
	if got := byKey["Table (direct)/B = 8"]; got != math.Pow(2, 32)*5 {
		t.Errorf("direct table B=8 = %v, want 2^32*5 (paper: 21.5G)", got)
	}
	if got := byKey["Table (token)/B = 4"]; got != 2*5*3730 {
		t.Errorf("token table B=4 = %v", got)
	}
}

func TestLatencyTable7(t *testing.T) {
	e := EstimateLatency(64, 16, 4, 100, 5)
	if e.HashCycles != 2 {
		t.Errorf("T_h = %d, want 2", e.HashCycles)
	}
	// Equation 14's printed formulas give ceil(1+log2 4)=3 and
	// ceil(1+log2 100)=8.
	if e.HiddenMMCycles != 3 {
		t.Errorf("T_mm_h = %d, want 3 per Eq 14", e.HiddenMMCycles)
	}
	if e.OutputMMCycles != 8 {
		t.Errorf("T_mm_o = %d, want 8 per Eq 14", e.OutputMMCycles)
	}
	if e.ActionCycles != 3 {
		t.Errorf("T_qv = %d, want 3", e.ActionCycles)
	}
	if e.Total != 19 {
		t.Errorf("total = %d, want 19 per Eq 14", e.Total)
	}
	p := PaperTable7()
	if p.Total != 22 || p.HiddenMMCycles != 5 || p.OutputMMCycles != 9 {
		t.Errorf("published Table VII row wrong: %+v", p)
	}
	if s := p.HashCycles + p.NormCycles + p.HiddenMMCycles + p.OutputMMCycles + p.ActivationCycle + p.ActionCycles; s != p.Total {
		t.Errorf("published row inconsistent: sum %d != %d", s, p.Total)
	}
}

func TestStorageTable8(t *testing.T) {
	s := EstimateStorage(4, 100, 5, 2000, 256)
	// Paper: 4.2KB for two MLPs at 16-bit fixed point.
	if s.MLPBytes < 4000 || s.MLPBytes > 4300 {
		t.Errorf("MLP bytes = %d, want ~4.2KB", s.MLPBytes)
	}
	// Paper: 34.8KB replay memory.
	if s.ReplayBytes < 33000 || s.ReplayBytes > 36000 {
		t.Errorf("replay bytes = %d, want ~34.8KB", s.ReplayBytes)
	}
}
