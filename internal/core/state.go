package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"resemble/internal/checkpoint"
	"resemble/internal/mem"
	"resemble/internal/nn"
	"resemble/internal/prefetch"
)

// Full-state checkpointing for both controllers (checkpoint.Stater).
// Unlike SaveModel/LoadModel — which persist only the learned
// parameters for reuse on other traces — SaveState captures everything
// needed to continue the exact run: both networks, the replay memory,
// the reward window, per-arm counters, the RNG position, and every
// input prefetcher's tables. An interrupted-and-resumed run is
// byte-identical to an uninterrupted one (see the determinism tests).

// trackerState mirrors RewardTracker.
type trackerState struct {
	Window int
	Seqs   []int
	Lines  []mem.Line
}

func (t *RewardTracker) saveState() trackerState {
	st := trackerState{Window: t.window}
	for _, r := range t.recs {
		st.Seqs = append(st.Seqs, r.seq)
		st.Lines = append(st.Lines, r.line)
	}
	return st
}

func (t *RewardTracker) loadState(st trackerState) error {
	if st.Window != t.window {
		return fmt.Errorf("core: reward window %d does not match configured %d", st.Window, t.window)
	}
	if len(st.Seqs) != len(st.Lines) {
		return fmt.Errorf("core: mismatched reward-tracker lengths")
	}
	t.recs = t.recs[:0]
	for i := range st.Seqs {
		t.recs = append(t.recs, pfRecord{seq: st.Seqs[i], line: st.Lines[i]})
	}
	return nil
}

// replayState mirrors Replay (Transition already has exported fields).
type replayState struct {
	Buf []Transition
	N   int
}

// savePrefetchers snapshots each input prefetcher; all of them must
// implement checkpoint.Stater.
func savePrefetchers(ps []prefetch.Prefetcher) ([][]byte, error) {
	out := make([][]byte, len(ps))
	for i, p := range ps {
		st, ok := p.(checkpoint.Stater)
		if !ok {
			return nil, fmt.Errorf("core: prefetcher %q does not support checkpointing", p.Name())
		}
		var buf bytes.Buffer
		if err := st.SaveState(&buf); err != nil {
			return nil, fmt.Errorf("core: prefetcher %q: %w", p.Name(), err)
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

func loadPrefetchers(ps []prefetch.Prefetcher, blobs [][]byte) error {
	if len(blobs) != len(ps) {
		return fmt.Errorf("core: snapshot has %d prefetchers, controller has %d", len(blobs), len(ps))
	}
	for i, p := range ps {
		st, ok := p.(checkpoint.Stater)
		if !ok {
			return fmt.Errorf("core: prefetcher %q does not support checkpointing", p.Name())
		}
		if err := st.LoadState(bytes.NewReader(blobs[i])); err != nil {
			return fmt.Errorf("core: prefetcher %q: %w", p.Name(), err)
		}
	}
	return nil
}

// controllerState is the gob payload of the DQN controller.
type controllerState struct {
	Seed     int64
	RNGDraws uint64

	Step    int
	PrevSeq int

	Policy, Target []byte // nn snapshot streams

	Replay  replayState
	Tracker trackerState

	Outstanding map[int]int
	RewardAcc   map[int]float64

	Rewards []float64
	Acts    []int8

	RewardSum    float64
	ActionCounts []uint64
	ArmIssued    []uint64
	ArmUseful    []uint64
	ArmUseless   []uint64
	QWindow      []float64

	ForcedNP, ChosenNP int

	Mask maskState

	Prefetchers [][]byte
}

// SaveState implements checkpoint.Stater.
func (c *Controller) SaveState(w io.Writer) error {
	var policy, target bytes.Buffer
	if err := c.policy.Save(&policy); err != nil {
		return err
	}
	if err := c.target.Save(&target); err != nil {
		return err
	}
	blobs, err := savePrefetchers(c.prefetchers)
	if err != nil {
		return err
	}
	seed, draws := c.rngSrc.State()
	st := controllerState{
		Seed: seed, RNGDraws: draws,
		Step: c.step, PrevSeq: c.prevSeq,
		Policy: policy.Bytes(), Target: target.Bytes(),
		Replay:      replayState{Buf: c.replay.buf, N: c.replay.n},
		Tracker:     c.tracker.saveState(),
		Outstanding: c.outstanding, RewardAcc: c.rewardAcc,
		Rewards: c.rewards, Acts: c.acts,
		RewardSum: c.rewardSum, ActionCounts: c.actionCounts,
		ArmIssued: c.armIssued, ArmUseful: c.armUseful, ArmUseless: c.armUseless,
		QWindow:  c.qWindow,
		ForcedNP: c.forcedNP, ChosenNP: c.chosenNP,
		Mask:        c.mask.saveState(),
		Prefetchers: blobs,
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadState implements checkpoint.Stater. The snapshot is fully
// decoded and validated before any controller state is replaced, so a
// failed load leaves the controller usable.
func (c *Controller) LoadState(r io.Reader) error {
	var st controllerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: controller state: %w", err)
	}
	if st.Seed != c.cfg.Seed {
		return fmt.Errorf("core: snapshot seed %d does not match configured %d", st.Seed, c.cfg.Seed)
	}
	if len(st.ActionCounts) != c.NumActions() {
		return fmt.Errorf("core: snapshot has %d actions, controller needs %d", len(st.ActionCounts), c.NumActions())
	}
	if len(st.Replay.Buf) != c.replay.Cap() {
		return fmt.Errorf("core: snapshot replay capacity %d does not match configured %d", len(st.Replay.Buf), c.replay.Cap())
	}
	policy, err := loadMLPMatching(st.Policy, c.policy)
	if err != nil {
		return fmt.Errorf("core: policy net: %w", err)
	}
	target, err := loadMLPMatching(st.Target, c.target)
	if err != nil {
		return fmt.Errorf("core: target net: %w", err)
	}
	if err := loadPrefetchers(c.prefetchers, st.Prefetchers); err != nil {
		return err
	}
	if err := c.tracker.loadState(st.Tracker); err != nil {
		return err
	}
	c.policy.CopyWeightsFrom(policy)
	c.target.CopyWeightsFrom(target)
	// The fixed serving snapshot is a pure function of the target net
	// and carries no state of its own; rebuild it from the restored
	// weights.
	c.refreshFixed()
	c.replay.buf = st.Replay.Buf
	c.replay.n = st.Replay.N
	c.rngSrc.Restore(st.Seed, st.RNGDraws)
	c.step = st.Step
	c.prevSeq = st.PrevSeq
	c.outstanding = orEmptyInt(st.Outstanding)
	c.rewardAcc = orEmptyFloat(st.RewardAcc)
	c.rewards = st.Rewards
	c.acts = st.Acts
	c.rewardSum = st.RewardSum
	c.actionCounts = st.ActionCounts
	c.armIssued = orZeros(st.ArmIssued, c.NumActions())
	c.armUseful = orZeros(st.ArmUseful, c.NumActions())
	c.armUseless = orZeros(st.ArmUseless, c.NumActions())
	c.qWindow = st.QWindow
	c.forcedNP = st.ForcedNP
	c.chosenNP = st.ChosenNP
	c.mask.loadState(st.Mask, c.NumActions())
	return nil
}

// tabularState is the gob payload of the tabular controller.
type tabularState struct {
	Seed     int64
	RNGDraws uint64

	Step    int
	PrevSeq int

	TokenKeys []uint64
	TokenVals []int
	Q         [][]float64

	Tracker trackerState

	PendingSeqs []int
	Pending     []tabTransitionState

	Rewards []float64
	Acts    []int8

	RewardSum    float64
	ActionCounts []uint64
	ArmIssued    []uint64
	ArmUseful    []uint64
	ArmUseless   []uint64
	QWindow      []float64

	Mask maskState

	Prefetchers [][]byte
}

type tabTransitionState struct {
	Token       int
	Action      int
	NP          bool
	NextTok     int
	HasNext     bool
	Outstanding int
	Acc         float64
}

// SaveState implements checkpoint.Stater.
func (c *TabularController) SaveState(w io.Writer) error {
	blobs, err := savePrefetchers(c.prefetchers)
	if err != nil {
		return err
	}
	seed, draws := c.rngSrc.State()
	st := tabularState{
		Seed: seed, RNGDraws: draws,
		Step: c.step, PrevSeq: c.prevSeq,
		Q:       c.q,
		Tracker: c.tracker.saveState(),
		Rewards: c.rewards, Acts: c.acts,
		RewardSum: c.rewardSum, ActionCounts: c.actionCounts,
		ArmIssued: c.armIssued, ArmUseful: c.armUseful, ArmUseless: c.armUseless,
		QWindow:     c.qWindow,
		Mask:        c.mask.saveState(),
		Prefetchers: blobs,
	}
	for key, tok := range c.tokens {
		st.TokenKeys = append(st.TokenKeys, key)
		st.TokenVals = append(st.TokenVals, tok)
	}
	for seq, t := range c.pending {
		st.PendingSeqs = append(st.PendingSeqs, seq)
		st.Pending = append(st.Pending, tabTransitionState{
			Token: t.token, Action: t.action, NP: t.np,
			NextTok: t.nextTok, HasNext: t.hasNext,
			Outstanding: t.outstanding, Acc: t.acc,
		})
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadState implements checkpoint.Stater; decode-then-install, so a
// failed load leaves the controller usable.
func (c *TabularController) LoadState(r io.Reader) error {
	var st tabularState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: tabular state: %w", err)
	}
	if st.Seed != c.cfg.Seed {
		return fmt.Errorf("core: snapshot seed %d does not match configured %d", st.Seed, c.cfg.Seed)
	}
	if len(st.ActionCounts) != c.NumActions() {
		return fmt.Errorf("core: snapshot has %d actions, controller needs %d", len(st.ActionCounts), c.NumActions())
	}
	if len(st.TokenKeys) != len(st.TokenVals) || len(st.TokenKeys) != len(st.Q) {
		return fmt.Errorf("core: mismatched token-table lengths")
	}
	if len(st.PendingSeqs) != len(st.Pending) {
		return fmt.Errorf("core: mismatched pending-transition lengths")
	}
	for _, row := range st.Q {
		if len(row) != c.NumActions() {
			return fmt.Errorf("core: Q row has %d actions, controller needs %d", len(row), c.NumActions())
		}
	}
	if err := loadPrefetchers(c.prefetchers, st.Prefetchers); err != nil {
		return err
	}
	if err := c.tracker.loadState(st.Tracker); err != nil {
		return err
	}
	c.rngSrc.Restore(st.Seed, st.RNGDraws)
	c.step = st.Step
	c.prevSeq = st.PrevSeq
	c.tokens = make(map[uint64]int, len(st.TokenKeys))
	for i, key := range st.TokenKeys {
		c.tokens[key] = st.TokenVals[i]
	}
	c.q = st.Q
	c.pending = make(map[int]*tabTransition, len(st.PendingSeqs))
	for i, seq := range st.PendingSeqs {
		t := st.Pending[i]
		c.pending[seq] = &tabTransition{
			token: t.Token, action: t.Action, np: t.NP,
			nextTok: t.NextTok, hasNext: t.HasNext,
			outstanding: t.Outstanding, acc: t.Acc,
		}
	}
	c.rewards = st.Rewards
	c.acts = st.Acts
	c.rewardSum = st.RewardSum
	c.actionCounts = st.ActionCounts
	c.armIssued = orZeros(st.ArmIssued, c.NumActions())
	c.armUseful = orZeros(st.ArmUseful, c.NumActions())
	c.armUseless = orZeros(st.ArmUseless, c.NumActions())
	c.qWindow = st.QWindow
	c.mask.loadState(st.Mask, c.NumActions())
	return nil
}

// loadMLPMatching decodes an MLP snapshot and verifies it matches
// want's architecture.
func loadMLPMatching(data []byte, want *nn.MLP) (*nn.MLP, error) {
	m, err := nn.LoadMLP(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	ws, gs := want.Sizes(), m.Sizes()
	if len(ws) != len(gs) {
		return nil, fmt.Errorf("core: model architecture %v, controller needs %v", gs, ws)
	}
	for i := range ws {
		if ws[i] != gs[i] {
			return nil, fmt.Errorf("core: model architecture %v, controller needs %v", gs, ws)
		}
	}
	return m, nil
}

// gob encodes empty maps/slices as nil; restore them as allocated so
// the hot path never writes to a nil map.
func orEmptyInt(m map[int]int) map[int]int {
	if m == nil {
		return make(map[int]int)
	}
	return m
}

func orEmptyFloat(m map[int]float64) map[int]float64 {
	if m == nil {
		return make(map[int]float64)
	}
	return m
}

func orZeros(v []uint64, n int) []uint64 {
	if v == nil {
		return make([]uint64, n)
	}
	return v
}
