package core

import (
	"bytes"
	"reflect"
	"testing"

	"resemble/internal/mem"
	"resemble/internal/prefetch"
)

// savedTabular drives a controller briefly and returns its snapshot
// plus the trained controller (for post-corruption comparison).
func savedTabular(t *testing.T) (*TabularController, []byte, []mem.Line) {
	t.Helper()
	seq := makeLoop(32)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)})
	driveLoop(t, c, seq, 2000)
	var buf bytes.Buffer
	if err := c.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	return c, buf.Bytes(), seq
}

// TestTabularLoadTruncatedLeavesStateIntact: a truncated snapshot must
// error without panicking, and — because decode is staged before
// install — the controller's table must be exactly what it was before
// the failed load.
func TestTabularLoadTruncatedLeavesStateIntact(t *testing.T) {
	c, data, seq := savedTabular(t)
	beforeTokens := len(c.tokens)
	beforeQ := append([][]float64(nil), c.q...)

	for _, cut := range []int{0, 4, 8, 12, 16, len(data) / 2, len(data) - 1} {
		if err := c.LoadModel(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
		if len(c.tokens) != beforeTokens || !reflect.DeepEqual(c.q, beforeQ) {
			t.Fatalf("truncation at %d mutated controller state", cut)
		}
	}

	// The controller must still run after the failed loads.
	driveLoop(t, c, seq, 100)
}

// TestTabularLoadBitFlips: single-bit corruption anywhere in the header
// region must be rejected or produce a decodable table — never a panic.
// (Flips inside float payloads legitimately decode; the format carries
// no checksum, which the checkpoint layer adds on top.)
func TestTabularLoadBitFlips(t *testing.T) {
	_, data, seq := savedTabular(t)
	for byteIdx := 0; byteIdx < 16 && byteIdx < len(data); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[byteIdx] ^= 1 << bit
			c := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)})
			_ = c.LoadModel(bytes.NewReader(mut)) // must not panic
			driveLoop(t, c, seq, 10)              // must stay usable either way
		}
	}
}

// TestControllerLoadTruncated: the MLP controller path must reject
// truncations without panicking and stay usable.
func TestControllerLoadTruncated(t *testing.T) {
	seq := makeLoop(32)
	c := NewController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)})
	driveLoop(t, c, seq, 2000)
	var buf bytes.Buffer
	if err := c.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, 8, 12, 20, len(data) / 2, len(data) - 1} {
		if err := c.LoadModel(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	driveLoop(t, c, seq, 100)
}

// TestTabularLoadRejectsDuplicateKeys: two rows with the same token key
// would leave orphan Q-rows; the decoder must reject them.
func TestTabularLoadRejectsDuplicateKeys(t *testing.T) {
	_, data, _ := savedTabular(t)
	// Row payload: 8-byte key + actions × 8-byte floats. Header is
	// magic(8) + actions(4) + rows(4) = 16 bytes.
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, makeLoop(8)), garbage("g", false)})
	rowLen := 8 + c.NumActions()*8
	if len(data) < 16+2*rowLen {
		t.Skip("snapshot too small for two rows")
	}
	mut := append([]byte(nil), data...)
	copy(mut[16+rowLen:16+rowLen+8], mut[16:16+8]) // second key := first key
	if err := c.LoadModel(bytes.NewReader(mut)); err == nil {
		t.Error("duplicate key accepted")
	}
}
