package core

import (
	"bytes"
	"testing"

	"resemble/internal/prefetch"
)

func TestControllerModelRoundTrip(t *testing.T) {
	seq := makeLoop(32)
	pfs := []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)}
	a := NewController(testConfig(), pfs)
	driveLoop(t, a, seq, 2000)

	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	b := NewController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)})
	if err := b.LoadModel(&buf); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	// Both controllers must now agree on Q-values for arbitrary states.
	for _, x := range [][]float64{{0.1, 0.5}, {0.9, 0.2}, {0, 0}} {
		qa := append([]float64(nil), a.target.Forward(x)...)
		qb := b.target.Forward(x)
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("Q mismatch at state %v: %v vs %v", x, qa, qb)
			}
		}
	}
}

func TestControllerLoadRejectsWrongArch(t *testing.T) {
	seq := makeLoop(16)
	a := NewController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// A controller with a different prefetcher count has a different
	// input width.
	b := NewController(testConfig(), []prefetch.Prefetcher{
		oracle("o", true, seq), garbage("g1", false), garbage("g2", false),
	})
	if err := b.LoadModel(&buf); err == nil {
		t.Error("architecture mismatch accepted")
	}
}

func TestControllerLoadRejectsGarbage(t *testing.T) {
	seq := makeLoop(16)
	c := NewController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	if err := c.LoadModel(bytes.NewReader([]byte("not a model at all....."))); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestTabularModelRoundTrip(t *testing.T) {
	seq := makeLoop(32)
	a := NewTabularController(testConfig(), []prefetch.Prefetcher{
		oracle("o", true, seq), garbage("g", false),
	})
	driveLoop(t, a, seq, 2000)
	if a.UniqueStates() == 0 {
		t.Fatal("precondition: no states learned")
	}

	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	b := NewTabularController(testConfig(), []prefetch.Prefetcher{
		oracle("o", true, seq), garbage("g", false),
	})
	if err := b.LoadModel(&buf); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if b.UniqueStates() != a.UniqueStates() {
		t.Fatalf("states %d != %d after round trip", b.UniqueStates(), a.UniqueStates())
	}
	// Every (key, row) must survive.
	for key, tokA := range a.tokens {
		tokB, ok := b.tokens[key]
		if !ok {
			t.Fatalf("key %#x missing after round trip", key)
		}
		for i := range a.q[tokA] {
			if a.q[tokA][i] != b.q[tokB][i] {
				t.Fatalf("Q row mismatch for key %#x", key)
			}
		}
	}
}

func TestTabularLoadRejectsWrongActions(t *testing.T) {
	seq := makeLoop(16)
	a := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	driveLoop(t, a, seq, 300)
	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewTabularController(testConfig(), []prefetch.Prefetcher{
		oracle("o", true, seq), garbage("g", false),
	})
	if err := b.LoadModel(&buf); err == nil {
		t.Error("action-count mismatch accepted")
	}
}

func TestTabularLoadRejectsGarbage(t *testing.T) {
	seq := makeLoop(16)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	if err := c.LoadModel(bytes.NewReader([]byte("junkjunkjunkjunkjunk"))); err == nil {
		t.Error("garbage stream accepted")
	}
}

// Loaded models must keep working: drive a fresh controller with a
// loaded model and verify it performs from the start (low epsilon it is
// not, but the Q-values steer exploitation immediately).
func TestLoadedModelDrivesDecisions(t *testing.T) {
	seq := makeLoop(64)
	pfs := func() []prefetch.Prefetcher {
		return []prefetch.Prefetcher{garbage("g", true), oracle("o", false, seq)}
	}
	a := NewController(testConfig(), pfs())
	driveLoop(t, a, seq, 6000)

	var buf bytes.Buffer
	if err := a.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.EpsStart = 0.0 // pure exploitation: decisions come from the model
	cfg.EpsEnd = 0.0
	cfg.EpsDecay = 1
	b := NewController(cfg, pfs())
	if err := b.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	driveLoop(t, b, seq, 1500)
	if got := tailMeanReward(b.RewardSeries(), 0.5); got < 0.5 {
		t.Errorf("loaded model tail reward = %.3f, want > 0.5", got)
	}
}
