package core

import "resemble/internal/mem"

// RewardTracker implements the paper's reward feedback rule (Section
// IV-D2): every prefetching transition enters a window of the last W
// prefetches; when a demand access matches a windowed prefetch address,
// that transition earns reward +1; a prefetch that leaves the window
// unmatched earns −1. NP transitions never enter the tracker (their
// reward is 0 immediately).
type RewardTracker struct {
	window int
	recs   []pfRecord
}

type pfRecord struct {
	seq  int // transition sequence number (access index)
	line mem.Line
}

// NewRewardTracker builds a tracker with the given window W.
func NewRewardTracker(window int) *RewardTracker {
	if window <= 0 {
		window = 1
	}
	return &RewardTracker{window: window}
}

// Add registers a prefetching transition.
func (t *RewardTracker) Add(seq int, line mem.Line) {
	t.recs = append(t.recs, pfRecord{seq: seq, line: line})
}

// Resolve processes a demand access to line at the current sequence
// number. It appends to hits the sequence numbers of windowed
// prefetches matching line (each earns +1 and leaves the window), and
// to expired the sequence numbers that aged out unmatched (each earns
// −1). The returned slices alias the provided backing arrays.
func (t *RewardTracker) Resolve(curSeq int, line mem.Line, hits, expired []int) (h, e []int) {
	hits = hits[:0]
	expired = expired[:0]
	// Expire from the front: records are in seq order.
	i := 0
	for ; i < len(t.recs); i++ {
		if t.recs[i].seq+t.window > curSeq {
			break
		}
		expired = append(expired, t.recs[i].seq)
	}
	if i > 0 {
		t.recs = t.recs[i:]
	}
	// Match the remainder.
	w := 0
	for _, r := range t.recs {
		if r.line == line {
			hits = append(hits, r.seq)
			continue
		}
		t.recs[w] = r
		w++
	}
	t.recs = t.recs[:w]
	return hits, expired
}

// Pending returns the number of unresolved prefetches (for tests).
func (t *RewardTracker) Pending() int { return len(t.recs) }

// Reset discards all pending prefetches.
func (t *RewardTracker) Reset() { t.recs = t.recs[:0] }
