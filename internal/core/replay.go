package core

import (
	"math/rand"

	"resemble/internal/mem"
)

// Transition is one replay-memory entry: {current state, action,
// prefetch, reward, future state} (Section IV-D1).
type Transition struct {
	Seq    int
	State  []float64
	Action int
	Line   mem.Line // prefetched line (undefined for NP)
	NP     bool     // action was no-prefetch

	Reward    float64
	HasReward bool
	Next      []float64
	HasNext   bool
}

// Valid reports whether the transition can be sampled for training
// under lazy sampling: both the reward and the successor state have
// arrived.
func (t *Transition) Valid() bool { return t.HasReward && t.HasNext }

// Replay is the bounded replay memory with lazy sampling (Section
// IV-D3): transitions are stored immediately, but only become sampleable
// once their future state and (asynchronous) reward have been filled in.
type Replay struct {
	buf []Transition
	n   int // total pushes
}

// NewReplay builds a replay memory with the given capacity.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, capacity)}
}

// Cap returns the capacity.
func (r *Replay) Cap() int { return len(r.buf) }

// Len returns the number of live transitions.
func (r *Replay) Len() int {
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// Push stores a transition at its sequence slot (seq must increase by 1
// per push). State is copied so callers may reuse their buffer.
func (r *Replay) Push(t Transition) {
	slot := &r.buf[t.Seq%len(r.buf)]
	state := slot.State[:0]
	next := slot.Next[:0]
	*slot = t
	slot.State = append(state, t.State...)
	slot.Next = append(next, t.Next...)
	r.n++
}

// Get returns the transition with the given sequence number, or nil if
// it has been overwritten.
func (r *Replay) Get(seq int) *Transition {
	if seq < 0 {
		return nil
	}
	t := &r.buf[seq%len(r.buf)]
	if t.Seq != seq || seq >= r.n {
		return nil
	}
	return t
}

// SetNext fills the future-state field of transition seq (lazy
// sampling: the successor state only exists one access later).
func (r *Replay) SetNext(seq int, next []float64) {
	if t := r.Get(seq); t != nil {
		t.Next = append(t.Next[:0], next...)
		t.HasNext = true
	}
}

// SetReward fills the reward of transition seq once cache feedback
// arrives.
func (r *Replay) SetReward(seq int, reward float64) {
	if t := r.Get(seq); t != nil {
		t.Reward = reward
		t.HasReward = true
	}
}

// SampleValid draws up to batch transitions uniformly from the valid
// (rewarded, successor-known) subset, appending pointers into the
// replay memory to dst. Sampling is with replacement; if no valid
// transition exists the result is empty.
func (r *Replay) SampleValid(rng *rand.Rand, batch int, dst []*Transition) []*Transition {
	dst = dst[:0]
	live := r.Len()
	if live == 0 {
		return dst
	}
	// Rejection sampling: valid transitions dominate after warm-up, so
	// a bounded number of tries per draw keeps this cheap.
	const triesPerDraw = 8
	for d := 0; d < batch; d++ {
		for try := 0; try < triesPerDraw; try++ {
			t := &r.buf[rng.Intn(live)]
			if t.Valid() {
				dst = append(dst, t)
				break
			}
		}
	}
	return dst
}

// CountValid returns the number of currently sampleable transitions
// (used by tests and diagnostics).
func (r *Replay) CountValid() int {
	n := 0
	for i := 0; i < r.Len(); i++ {
		if r.buf[i].Valid() {
			n++
		}
	}
	return n
}
