package core

import (
	"math"
	"math/rand"

	"resemble/internal/checkpoint"
	"resemble/internal/mem"
	"resemble/internal/nn"
	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
)

// Controller is the MLP-based ReSemble ensemble controller (Sections
// IV-C through IV-E, Algorithm 1). It implements sim.Source: on every
// LLC access it collects the input prefetchers' suggestions, selects
// one action (a suggestion index or NP) with a decaying ε-greedy policy
// over the target network's Q-values, stores the transition in the
// replay memory, resolves rewards from the prefetch window, and trains
// the policy network on lazily-sampled valid transitions. Every I_t
// steps the policy and target networks swap roles.
type Controller struct {
	cfg         Config
	prefetchers []prefetch.Prefetcher

	policy, target *nn.MLP
	replay         *Replay
	tracker        *RewardTracker
	rngSrc         *checkpoint.RandSource
	rng            *rand.Rand

	// fixed is the 16-bit serving snapshot of the target network (nil
	// unless cfg.FixedFrac > 0). It is requantized in place at every
	// role switch — the only points where the target's weights change —
	// so it is always a pure function of the current target and needs no
	// separate checkpoint state.
	fixed *nn.FixedMLP

	step    int
	prevSeq int // seq of the previous transition (-1 initially)

	// Scratch.
	obs     []Observation
	order   []int
	state   []float64
	next    []float64
	batch   []*Transition
	hitSeq  []int
	expSeq  []int
	out     []mem.Line
	actions []int
	qBuf    []float64   // serving-side Q-vector (action selection)
	nexts   [][]float64 // trainPolicy: next-states with HasNext
	qBatch  [][]float64 // trainPolicy: batched target Q-vectors

	// Per-transition reward accumulation: a prefetching transition's
	// reward is the sum over its issued lines (±1 each), finalized when
	// outstanding[seq] reaches zero.
	outstanding map[int]int
	rewardAcc   map[int]float64

	rewards []float64 // resolved reward per transition seq
	acts    []int8    // chosen action per transition seq

	// Telemetry accumulators (always maintained; they are a handful of
	// integer ops per access).
	rewardSum    float64
	actionCounts []uint64
	armIssued    []uint64
	armUseful    []uint64
	armUseless   []uint64

	// Telemetry handles (nil unless AttachTelemetry was called).
	tel      *telemetry.Collector
	hTD      *telemetry.Histogram
	cTrain   *telemetry.Counter
	cSwitch  *telemetry.Counter
	qWindow  []float64 // Q-values evaluated since the last probe
	qPending bool      // a collector is attached, retain qWindow

	// Diagnostics.
	forcedNP int // accesses with no valid suggestion at all
	chosenNP int // accesses where NP was selected despite valid options

	// Graceful degradation: persistently useless arms are masked out of
	// selection (no-op unless cfg.MaskFloor > 0).
	mask armMask

	// Explainability: decisions sampled by the collector wait here until
	// the reward window resolves them (bounded by the window size).
	explainPending map[int]*telemetry.Decision
	explainNames   []string
}

// AttachTelemetry implements telemetry.Attachable: the controller
// reports TD-error and training-cadence instruments into the
// collector's registry, emits action/reward events, and starts
// retaining evaluated Q-values for window probes.
func (c *Controller) AttachTelemetry(t *telemetry.Collector) {
	c.tel = t
	c.qPending = t != nil
	r := t.Registry()
	c.hTD = r.Histogram("core.dqn.td_error")
	c.cTrain = r.Counter("core.dqn.train_batches")
	c.cSwitch = r.Counter("core.dqn.role_switches")
	c.mask.attach(r)
	for _, p := range c.prefetchers {
		if a, ok := p.(telemetry.Attachable); ok {
			a.AttachTelemetry(t)
		}
	}
}

// TelemetryStats implements telemetry.ControllerProbe. The QValues
// buffer is drained by the call; cumulative fields are diffed by the
// collector.
func (c *Controller) TelemetryStats() telemetry.ControllerStats {
	qv := append([]float64(nil), c.qWindow...)
	c.qWindow = c.qWindow[:0]
	return telemetry.ControllerStats{
		Steps:        c.step,
		Epsilon:      c.cfg.epsilon(c.step),
		RewardSum:    c.rewardSum,
		ActionNames:  c.ActionNames(),
		ActionCounts: c.actionCounts,
		ArmIssued:    c.armIssued,
		ArmUseful:    c.armUseful,
		ArmUseless:   c.armUseless,
		QValues:      qv,
	}
}

// Diagnostics reports how many NP decisions were forced (no prefetcher
// had a suggestion) versus chosen over valid alternatives.
func (c *Controller) Diagnostics() (forcedNP, chosenNP int) {
	return c.forcedNP, c.chosenNP
}

// NewController builds the MLP-based ensemble controller over the given
// input prefetchers. It panics on invalid configuration or an empty
// prefetcher list (both are static programming errors).
func NewController(cfg Config, prefetchers []prefetch.Prefetcher) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(prefetchers) == 0 {
		panic("core: controller needs at least one prefetcher")
	}
	c := &Controller{cfg: cfg, prefetchers: prefetchers}
	c.initModel()
	return c
}

func (c *Controller) initModel() {
	// The counting source draws the same stream as rand.NewSource for
	// every rand.Rand path used here, while making the RNG position a
	// checkpointable (seed, draws) pair.
	c.rngSrc = checkpoint.NewRandSource(c.cfg.Seed)
	c.rng = rand.New(c.rngSrc)
	in := len(c.prefetchers)
	if c.cfg.UsePC {
		in++
	}
	actions := c.NumActions()
	c.policy = nn.NewMLP(c.rng, nn.ReLU, in, c.cfg.Hidden, actions)
	c.policy.GradClip = 1
	c.target = c.policy.Clone()
	c.fixed = nil
	if c.cfg.FixedFrac > 0 {
		f, err := nn.Quantize(c.target, c.cfg.FixedFrac)
		if err != nil {
			panic(err) // unreachable: Validate bounds FixedFrac
		}
		c.fixed = f
	}
	c.replay = NewReplay(c.cfg.ReplayN)
	c.tracker = NewRewardTracker(c.cfg.Window)
	c.outstanding = make(map[int]int)
	c.rewardAcc = make(map[int]float64)
	c.step = 0
	c.prevSeq = -1
	c.rewards = c.rewards[:0]
	c.acts = c.acts[:0]
	c.rewardSum = 0
	c.actionCounts = make([]uint64, c.NumActions())
	c.armIssued = make([]uint64, c.NumActions())
	c.armUseful = make([]uint64, c.NumActions())
	c.armUseless = make([]uint64, c.NumActions())
	c.qWindow = c.qWindow[:0]
	c.mask = newArmMask(c.cfg, c.NumActions())
	c.explainPending = nil
	c.explainNames = nil
}

// MaskedArms reports how many input prefetchers are currently masked
// out of selection (always 0 with masking disabled).
func (c *Controller) MaskedArms() int { return c.mask.activeCount() }

// ArmMasked reports whether input prefetcher i is currently masked.
func (c *Controller) ArmMasked(i int) bool { return c.mask.isMasked(i) }

// accumReward adds one line's outcome to its transition and finalizes
// the transition's reward when all its lines have resolved.
func (c *Controller) accumReward(seq int, r float64) {
	c.rewardAcc[seq] += r
	n := c.outstanding[seq] - 1
	if n > 0 {
		c.outstanding[seq] = n
		return
	}
	total := c.rewardAcc[seq]
	delete(c.outstanding, seq)
	delete(c.rewardAcc, seq)
	c.replay.SetReward(seq, total)
	c.recordReward(seq, total)
}

// Name implements sim.Source.
func (c *Controller) Name() string { return "resemble" }

// NumActions returns |A| = one per prefetcher plus NP.
func (c *Controller) NumActions() int { return len(c.prefetchers) + 1 }

// npAction returns the action index meaning "no prefetch".
func (c *Controller) npAction() int { return len(c.prefetchers) }

// Reset implements sim.Source: it reinitializes the agent and resets
// every input prefetcher.
func (c *Controller) Reset() {
	for _, p := range c.prefetchers {
		p.Reset()
	}
	c.initModel()
}

// OnAccess implements sim.Source — one iteration of Algorithm 1.
func (c *Controller) OnAccess(a prefetch.AccessContext) []mem.Line {
	seq := c.step
	c.step++

	// Observation and state vector (Alg 1 line 9).
	c.obs, c.order = CollectObservations(c.prefetchers, a, c.obs, c.order)
	c.state = StateVector(c.state, c.obs, a.Addr, a.PC, c.cfg.HashBits, c.cfg.UsePC)

	// Resolve rewards for windowed prefetches against this access
	// (Alg 1 lines 24–29). This happens before acting so the replay is
	// as fresh as possible when training below. Every line the chosen
	// prefetcher issued scores ±1; the transition's reward is the sum,
	// finalized once all of its lines have resolved. (The paper rewards
	// only the top suggestion; with heterogeneous-degree inputs that
	// signal cannot tell a one-line arm from a four-line arm — see
	// DESIGN.md.)
	c.hitSeq, c.expSeq = c.tracker.Resolve(seq, a.Line, c.hitSeq, c.expSeq)
	for _, s := range c.hitSeq {
		c.armUseful[c.acts[s]]++
		c.accumReward(s, 1)
	}
	for _, s := range c.expSeq {
		c.armUseless[c.acts[s]]++
		c.accumReward(s, -1)
	}

	// Fill the previous transition's future state (lazy sampling).
	if c.prevSeq >= 0 {
		c.replay.SetNext(c.prevSeq, c.state)
	}

	// ε-greedy action selection over the serving network (Alg 1 lines
	// 10–14): the float target net, or its fixed-point snapshot when
	// cfg.FixedFrac is set. Exploitation masks padded (invalid)
	// suggestions: picking one would just execute NP, so the argmax runs
	// over the actions that can actually be carried out.
	// Degradation-masked arms are excluded from both branches.
	c.mask.tick(c.armUseful, c.armUseless)
	var action int
	var q []float64
	explored := false
	if c.rng.Float64() < c.cfg.epsilon(seq) {
		explored = true
		action = c.mask.explore(c.rng, c.NumActions())
	} else {
		q = c.serveQ(c.state)
		if c.qPending {
			c.qWindow = append(c.qWindow, q...)
		}
		action = c.argmaxValid(q)
	}
	if c.tel.ExplainTick() {
		c.explain(seq, action, explored, q)
	}

	// Execute (Alg 1 lines 15–20). Selecting an invalid (padded)
	// suggestion degenerates to NP.
	tr := Transition{Seq: seq, State: c.state, Action: action}
	c.out = c.out[:0]
	if action == c.npAction() || !c.obs[action].Valid {
		anyValid := false
		for i := range c.obs {
			if c.obs[i].Valid {
				anyValid = true
				break
			}
		}
		if anyValid {
			c.chosenNP++
		} else {
			c.forcedNP++
		}
		tr.NP = true
		tr.Reward = 0
		tr.HasReward = true
		c.recordReward(seq, 0)
	} else {
		// The selected prefetcher issues its full suggestion list so
		// the ensemble runs at the same degree as the individual
		// baselines; every issued line is tracked for reward.
		tr.Line = c.obs[action].Line
		for _, s := range c.obs[action].All {
			c.out = append(c.out, s.Line)
			c.tracker.Add(seq, s.Line)
		}
		c.outstanding[seq] = len(c.out)
		c.armIssued[action] += uint64(len(c.out))
	}
	c.recordAction(seq, action)
	c.replay.Push(tr)
	c.prevSeq = seq
	if c.tel != nil {
		c.tel.Trace(telemetry.Event{Seq: uint64(seq), Kind: telemetry.KindAction, PC: a.PC, Addr: uint64(a.Addr), Action: int8(action)})
	}

	// Online training (Alg 1 lines 31–35).
	if c.step%c.cfg.PolicyInterval == 0 {
		c.trainPolicy()
	}
	// Role switch (Alg 1 lines 36–39). The target's weights change only
	// here, so refreshing the serving snapshot at this point keeps it an
	// exact function of the current target (checkpoint/resume-safe).
	if c.step%c.cfg.TargetInterval == 0 {
		c.policy, c.target = c.target, c.policy
		c.policy.CopyWeightsFrom(c.target)
		c.refreshFixed()
		c.cSwitch.Inc()
		if c.tel != nil {
			c.tel.Trace(telemetry.Event{Seq: uint64(seq), Kind: telemetry.KindRoleSwitch})
		}
	}
	return c.out
}

// serveQ evaluates the serving network's Q-vector for state into the
// controller's reusable qBuf: the fixed-point snapshot when quantized
// serving is enabled, the float target net otherwise. The result is
// valid until the next serveQ call.
func (c *Controller) serveQ(state []float64) []float64 {
	if c.fixed != nil {
		c.qBuf = c.fixed.ForwardInto(c.qBuf, state)
	} else {
		c.qBuf = c.target.ForwardInto(c.qBuf, state)
	}
	return c.qBuf
}

// refreshFixed re-snapshots the fixed-point serving network from the
// current target. Called wherever the target's weights change: role
// switches and checkpoint restore.
func (c *Controller) refreshFixed() {
	if c.fixed == nil {
		return
	}
	if err := c.fixed.Requantize(c.target); err != nil {
		panic(err) // unreachable: architecture is fixed for the controller's lifetime
	}
}

// trainPolicy performs one batch of Q-learning updates on the policy
// net using lazily-sampled valid transitions (Equations 9–11). Target
// Q-vectors for the whole batch are computed in one ForwardBatch call —
// the target net is frozen between role switches, so batching all its
// forwards ahead of the policy updates is bitwise identical to
// interleaving them. Bootstrap targets always come from the float
// target network, even under quantized serving: Equation 9's max-Q
// regression target should not inherit quantization error.
func (c *Controller) trainPolicy() {
	c.batch = c.replay.SampleValid(c.rng, c.cfg.Batch, c.batch)
	c.nexts = c.nexts[:0]
	for _, t := range c.batch {
		if t.HasNext {
			c.nexts = append(c.nexts, t.Next)
		}
	}
	c.qBatch = c.target.ForwardBatch(c.qBatch, c.nexts)
	qi := 0
	for _, t := range c.batch {
		y := t.Reward
		if t.HasNext {
			y += c.cfg.Gamma * maxf(c.qBatch[qi])
			qi++
		}
		se := c.policy.TrainStep(t.State, t.Action, y, c.cfg.LR)
		if c.hTD != nil {
			// TrainStep returns the squared TD error; record |δ|.
			c.hTD.Observe(math.Sqrt(se))
		}
	}
	if len(c.batch) > 0 {
		c.cTrain.Inc()
		if c.tel != nil {
			c.tel.Trace(telemetry.Event{Seq: uint64(c.step), Kind: telemetry.KindTrain})
		}
	}
}

func (c *Controller) recordReward(seq int, r float64) {
	for len(c.rewards) <= seq {
		c.rewards = append(c.rewards, 0)
	}
	c.rewards[seq] = r
	c.rewardSum += r
	if c.tel != nil && r != 0 {
		c.tel.Trace(telemetry.Event{Seq: uint64(seq), Kind: telemetry.KindReward, Reward: r})
	}
	if d, ok := c.explainPending[seq]; ok {
		delete(c.explainPending, seq)
		d.Reward = r
		d.Resolved = true
		c.tel.RecordDecision(*d)
	}
}

// explain registers a sampled decision record for seq; recordReward
// emits it once the reward window resolves the decision. q is the
// Q-vector the selection used, or nil on the exploration branch (the
// record recomputes it on the serving path — inference is
// side-effect-free for training).
func (c *Controller) explain(seq, action int, explored bool, q []float64) {
	if q == nil {
		q = c.serveQ(c.state)
	}
	d := &telemetry.Decision{
		Seq:        uint64(seq),
		Epsilon:    c.cfg.epsilon(seq),
		Explored:   explored,
		State:      append([]float64(nil), c.state...),
		Q:          append([]float64(nil), q...),
		Action:     action,
		ActionName: c.actionName(action),
	}
	if c.mask.anyMasked() {
		for i := 0; i < c.NumActions(); i++ {
			if c.mask.isMasked(i) {
				d.MaskedArms = append(d.MaskedArms, c.actionName(i))
			}
		}
	}
	if c.explainPending == nil {
		c.explainPending = map[int]*telemetry.Decision{}
	}
	c.explainPending[seq] = d
}

// actionName resolves one action index to its display name, caching
// the ActionNames slice (stable for the controller's lifetime).
func (c *Controller) actionName(i int) string {
	if c.explainNames == nil {
		c.explainNames = c.ActionNames()
	}
	if i < 0 || i >= len(c.explainNames) {
		return "?"
	}
	return c.explainNames[i]
}

func (c *Controller) recordAction(seq, a int) {
	for len(c.acts) <= seq {
		c.acts = append(c.acts, 0)
	}
	c.acts[seq] = int8(a)
	c.actionCounts[a]++
}

// RewardSeries returns the resolved reward of every transition, indexed
// by access sequence (unresolved trailing prefetches read as 0). The
// returned slice aliases internal state; copy before mutating.
func (c *Controller) RewardSeries() []float64 { return c.rewards }

// ActionSeries returns the chosen action per access. The returned slice
// aliases internal state.
func (c *Controller) ActionSeries() []int8 { return c.acts }

// ActionNames returns a label per action index: the prefetcher names in
// observation order, then "NP".
func (c *Controller) ActionNames() []string {
	names := make([]string, 0, c.NumActions())
	// Observation order is spatial-first; reproduce it via a dry pass.
	for pass := 0; pass < 2; pass++ {
		wantSpatial := pass == 0
		for _, p := range c.prefetchers {
			if p.Spatial() == wantSpatial {
				names = append(names, p.Name())
			}
		}
	}
	return append(names, "NP")
}

// Epsilon exposes the current exploration rate (for diagnostics).
func (c *Controller) Epsilon() float64 { return c.cfg.epsilon(c.step) }

// QuantizationAgreement quantizes the current target network to the
// given fixed-point width (Table VIII budgets 16-bit fixed point) and
// measures how often the quantized network would select the same action
// as the float network over the states currently held in the replay
// memory. It returns the agreement fraction and the number of states
// evaluated.
func (c *Controller) QuantizationAgreement(frac uint) (float64, int) {
	var states [][]float64
	for seq := c.step - 1; seq >= 0 && len(states) < 512; seq-- {
		if t := c.replay.Get(seq); t != nil {
			states = append(states, t.State)
		}
	}
	if len(states) == 0 {
		return 1, 0
	}
	f, err := nn.Quantize(c.target, frac)
	if err != nil {
		return 0, 0
	}
	return nn.ArgmaxAgreement(c.target, f, states), len(states)
}

// argmaxValid returns the highest-Q action among valid suggestions and
// NP.
func (c *Controller) argmaxValid(q []float64) int {
	best := c.npAction() // NP is always executable
	for i := range c.obs {
		if c.obs[i].Valid && !c.mask.isMasked(i) && q[i] > q[best] {
			best = i
		}
	}
	return best
}

func maxf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
