package core

import (
	"bytes"
	"testing"

	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/domino"
	"resemble/internal/prefetch/isb"
	"resemble/internal/prefetch/spp"
	"resemble/internal/trace"
)

func ensembleArms() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		bo.New(bo.Config{}), spp.New(spp.Config{}),
		isb.New(isb.Config{}), domino.New(domino.Config{}),
	}
}

// driveTrace feeds a workload trace's access stream into the controller
// the way the simulator presents LLC accesses.
func driveTrace(c *Controller, tr *trace.Trace, from int) {
	for i := from; i < len(tr.Records); i++ {
		rec := tr.Records[i]
		c.OnAccess(prefetch.AccessContext{
			Index: i, ID: rec.ID, PC: rec.PC, Addr: rec.Addr, Line: rec.Line(),
		})
	}
}

// TestQuantizedServingAgreement is the acceptance test for the
// fixed-point serving path: after training on a real workload stream,
// the 16-bit Q(frac) network must pick the same argmax action as the
// float network on nearly every replay-memory state. The tolerance is
// not 1.0 because quantization rounds each weight to the nearest
// 2^-frac; states whose top two Q-values are within the accumulated
// rounding error (~1e-3 at frac=10 for these layer widths) can
// legitimately flip — across workloads those near-ties stay rare.
func TestQuantizedServingAgreement(t *testing.T) {
	const frac = 10 // Table VIII's 16-bit operating point
	for _, name := range []string{"433.milc", "471.omnetpp", "gap.bfs"} {
		cfg := testConfig()
		cfg.Seed = 7
		c := NewController(cfg, ensembleArms())
		driveTrace(c, trace.MustLookup(name).Generate(5000), 0)
		agree, n := c.QuantizationAgreement(frac)
		if n == 0 {
			t.Fatalf("%s: no replay states to evaluate", name)
		}
		if agree < 0.95 {
			t.Errorf("%s: quantized/float argmax agreement %.3f over %d states, want >= 0.95",
				name, agree, n)
		}
	}
}

// TestQuantizedServingLearns: serving decisions from the fixed-point
// snapshot must not break learning — the controller still locks onto a
// perfect oracle arm (same scenario as TestControllerLearnsGoodPrefetcher).
func TestQuantizedServingLearns(t *testing.T) {
	seq := makeLoop(64)
	pfs := []prefetch.Prefetcher{
		garbage("g1", true),
		oracle("oracle", false, seq),
		garbage("g2", false),
	}
	cfg := testConfig()
	cfg.FixedFrac = 10
	c := NewController(cfg, pfs)
	driveLoop(t, c, seq, 6000)
	if got := tailMeanReward(c.RewardSeries(), 0.25); got < 0.6 {
		t.Errorf("tail mean reward = %.3f under quantized serving, want > 0.6", got)
	}
}

// TestQuantizedServingCheckpointDeterminism: with FixedFrac set, an
// interrupted-and-resumed controller run replays exactly like an
// uninterrupted one. This works because the fixed snapshot is a pure
// function of the target network — LoadState rebuilds it from the
// restored weights instead of checkpointing quantized parameters.
func TestQuantizedServingCheckpointDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.FixedFrac = 10
	cfg.Seed = 3
	tr := trace.MustLookup("471.omnetpp").Generate(4000)
	const stop = 2000

	full := NewController(cfg, ensembleArms())
	driveTrace(full, tr, 0)

	a := NewController(cfg, ensembleArms())
	for i := 0; i < stop; i++ {
		rec := tr.Records[i]
		a.OnAccess(prefetch.AccessContext{
			Index: i, ID: rec.ID, PC: rec.PC, Addr: rec.Addr, Line: rec.Line(),
		})
	}
	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	b := NewController(cfg, ensembleArms())
	if err := b.LoadState(&buf); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	driveTrace(b, tr, stop)

	wantActs, gotActs := full.ActionSeries(), b.ActionSeries()
	if len(wantActs) != len(gotActs) {
		t.Fatalf("action series length %d vs %d", len(wantActs), len(gotActs))
	}
	for i := range wantActs {
		if wantActs[i] != gotActs[i] {
			t.Fatalf("resumed run diverged at decision %d: action %d vs %d", i, wantActs[i], gotActs[i])
		}
	}
	wantR, gotR := full.RewardSeries(), b.RewardSeries()
	if len(wantR) != len(gotR) {
		t.Fatalf("reward series length %d vs %d", len(wantR), len(gotR))
	}
	for i := range wantR {
		if wantR[i] != gotR[i] {
			t.Fatalf("resumed run reward diverged at %d: %v vs %v", i, wantR[i], gotR[i])
		}
	}
}
