package core

import (
	"math/rand"
	"testing"

	"resemble/internal/mem"
	"resemble/internal/metrics"
	"resemble/internal/prefetch"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	c := DefaultConfig()
	c.Batch = 16
	c.Hidden = 24
	c.PolicyInterval = 2
	return c
}

// driveLoop runs a controller over a synthetic cyclic access sequence
// with a scripted set of prefetchers, and returns the reward series.
// goodIdx, if >= 0, marks a prefetcher that perfectly predicts the next
// access.
func driveLoop(t *testing.T, ctrl interface {
	OnAccess(prefetch.AccessContext) []mem.Line
	RewardSeries() []float64
	ActionSeries() []int8
}, seq []mem.Line, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		line := seq[i%len(seq)]
		ctrl.OnAccess(prefetch.AccessContext{
			Index: i,
			PC:    0x400,
			Addr:  mem.LineAddr(line),
			Line:  line,
			Hit:   false,
		})
	}
}

// makeLoop builds a cyclic line sequence of the given length.
func makeLoop(n int) []mem.Line {
	seq := make([]mem.Line, n)
	for i := range seq {
		seq[i] = mem.Line(0x10000 + i*37)
	}
	return seq
}

// oracle returns a prefetcher that always suggests the next line of the
// cycle (it reads the position from ctx.Index).
func oracle(name string, spatial bool, seq []mem.Line) prefetch.Prefetcher {
	return &fakePF{name: name, spatial: spatial, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		next := seq[(a.Index+1)%len(seq)]
		return []prefetch.Suggestion{{Line: next, Confidence: 1}}
	}}
}

// garbage returns a prefetcher that suggests lines never accessed,
// cycling through a small fixed set so its observations tokenize.
func garbage(name string, spatial bool) prefetch.Prefetcher {
	return &fakePF{name: name, spatial: spatial, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		return []prefetch.Suggestion{{Line: 1<<40 + mem.Line(a.Index%4)}}
	}}
}

// silent returns a prefetcher that never suggests anything.
func silent(name string, spatial bool) prefetch.Prefetcher {
	return &fakePF{name: name, spatial: spatial}
}

func tailMeanReward(r []float64, frac float64) float64 {
	lo := int(float64(len(r)) * (1 - frac))
	return metrics.Mean(r[lo:])
}

func TestControllerLearnsGoodPrefetcher(t *testing.T) {
	seq := makeLoop(64)
	pfs := []prefetch.Prefetcher{
		garbage("g1", true),
		oracle("oracle", false, seq),
		garbage("g2", false),
	}
	c := NewController(testConfig(), pfs)
	driveLoop(t, c, seq, 6000)
	r := c.RewardSeries()
	if got := tailMeanReward(r, 0.25); got < 0.6 {
		t.Errorf("tail mean reward = %.3f, want > 0.6 (controller should lock onto the oracle)", got)
	}
	// The oracle (observation index 1: spatial g1 first, then oracle,
	// then g2 temporal) must dominate the tail actions.
	acts := c.ActionSeries()
	counts := map[int8]int{}
	for _, a := range acts[len(acts)*3/4:] {
		counts[a]++
	}
	var best int8
	for a, n := range counts {
		if n > counts[best] {
			best = a
		}
	}
	names := c.ActionNames()
	if names[best] != "oracle" {
		t.Errorf("dominant tail action = %s (counts %v), want oracle", names[best], counts)
	}
}

func TestControllerLearnsNPOnGarbage(t *testing.T) {
	seq := makeLoop(64)
	pfs := []prefetch.Prefetcher{
		garbage("g1", true),
		garbage("g2", false),
	}
	c := NewController(testConfig(), pfs)
	driveLoop(t, c, seq, 6000)
	// With only harmful prefetchers, NP (reward 0) beats prefetching
	// (reward −1): the tail reward must approach 0.
	if got := tailMeanReward(c.RewardSeries(), 0.25); got < -0.2 {
		t.Errorf("tail mean reward = %.3f, want near 0 (NP)", got)
	}
	acts := c.ActionSeries()
	np := 0
	tail := acts[len(acts)*3/4:]
	for _, a := range tail {
		if int(a) == c.npAction() {
			np++
		}
	}
	if np < len(tail)/2 {
		t.Errorf("NP chosen %d/%d times in tail, want majority", np, len(tail))
	}
}

func TestControllerAdaptsToPhaseChange(t *testing.T) {
	seqA := makeLoop(64)
	seqB := make([]mem.Line, 64)
	for i := range seqB {
		seqB[i] = mem.Line(0x900000 + i*13)
	}
	// Prefetcher A is an oracle only during phase A; B only during B.
	phase := 0
	pfA := &fakePF{name: "pfA", spatial: true, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		if phase == 0 {
			return []prefetch.Suggestion{{Line: seqA[(a.Index+1)%64]}}
		}
		return []prefetch.Suggestion{{Line: 1 << 41}}
	}}
	pfB := &fakePF{name: "pfB", spatial: false, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		if phase == 1 {
			return []prefetch.Suggestion{{Line: seqB[(a.Index+1)%64]}}
		}
		return []prefetch.Suggestion{{Line: 1 << 42}}
	}}
	c := NewController(testConfig(), []prefetch.Prefetcher{pfA, pfB})
	for i := 0; i < 4000; i++ {
		c.OnAccess(prefetch.AccessContext{Index: i, Addr: mem.LineAddr(seqA[i%64]), Line: seqA[i%64]})
	}
	phase = 1
	for i := 4000; i < 8000; i++ {
		c.OnAccess(prefetch.AccessContext{Index: i, Addr: mem.LineAddr(seqB[i%64]), Line: seqB[i%64]})
	}
	r := c.RewardSeries()
	phaseBTail := metrics.Mean(r[7000:])
	if phaseBTail < 0.4 {
		t.Errorf("reward after phase change = %.3f, want > 0.4 (controller must re-adapt)", phaseBTail)
	}
}

func TestControllerDeterministicWithSeed(t *testing.T) {
	seq := makeLoop(32)
	build := func() *Controller {
		return NewController(testConfig(), []prefetch.Prefetcher{
			oracle("o", true, seq), garbage("g", false),
		})
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		line := seq[i%len(seq)]
		ctx := prefetch.AccessContext{Index: i, Addr: mem.LineAddr(line), Line: line}
		la := append([]mem.Line(nil), a.OnAccess(ctx)...)
		lb := b.OnAccess(ctx)
		if len(la) != len(lb) {
			t.Fatalf("step %d: decisions diverge", i)
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("step %d: prefetch %d differs", i, j)
			}
		}
	}
}

func TestControllerInvalidSuggestionDegeneratesToNP(t *testing.T) {
	// A controller over only silent prefetchers can never prefetch.
	c := NewController(testConfig(), []prefetch.Prefetcher{
		silent("s1", true), silent("s2", false),
	})
	seq := makeLoop(16)
	for i := 0; i < 300; i++ {
		line := seq[i%len(seq)]
		if out := c.OnAccess(prefetch.AccessContext{Index: i, Addr: mem.LineAddr(line), Line: line}); len(out) != 0 {
			t.Fatalf("prefetched %v despite no valid suggestions", out)
		}
	}
	for _, r := range c.RewardSeries() {
		if r != 0 {
			t.Fatal("non-zero reward without prefetching")
		}
	}
}

func TestControllerResetClearsLearning(t *testing.T) {
	seq := makeLoop(32)
	c := NewController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	driveLoop(t, c, seq, 1000)
	c.Reset()
	if len(c.RewardSeries()) != 0 || len(c.ActionSeries()) != 0 {
		t.Error("series not cleared by Reset")
	}
	if c.Epsilon() < testConfig().EpsStart-1e-9 {
		t.Errorf("epsilon after reset = %v, want restart at %v", c.Epsilon(), testConfig().EpsStart)
	}
}

func TestControllerActionNames(t *testing.T) {
	c := NewController(testConfig(), []prefetch.Prefetcher{
		garbage("temporal1", false),
		garbage("spatial1", true),
	})
	names := c.ActionNames()
	want := []string{"spatial1", "temporal1", "NP"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestControllerPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty prefetcher list did not panic")
		}
	}()
	NewController(testConfig(), nil)
}

func TestControllerWithPCInput(t *testing.T) {
	seq := makeLoop(64)
	cfg := testConfig()
	cfg.UsePC = true
	c := NewController(cfg, []prefetch.Prefetcher{oracle("o", true, seq), garbage("g", false)})
	driveLoop(t, c, seq, 4000)
	if got := tailMeanReward(c.RewardSeries(), 0.25); got < 0.5 {
		t.Errorf("tail reward with PC input = %.3f, want > 0.5", got)
	}
}
