// Package core implements the paper's primary contribution: ReSemble,
// the reinforcement-learning ensemble prefetching framework (Section
// IV). It contains:
//
//   - observation collection and preprocessing (hash and norm, Eq 4–6);
//   - the replay memory with the lazy-sampling mechanism (Section IV-D);
//   - reward assignment from the prefetch-hit window W (Section IV-D2);
//   - the MLP-based DQN ensemble controller with policy/target networks
//     and the role-switch update (Section IV-C/IV-E, Algorithm 1);
//   - the tabular Q-learning variant with hash-compressed, tokenized
//     states (Section IV-F);
//   - the analytic model-size, latency and storage estimates of Tables
//     IV, VII and VIII.
//
// Both controllers implement sim.Source, so they plug into the
// simulator exactly like an individual prefetcher.
package core

import (
	"fmt"
	"math"

	"resemble/internal/mem"
	"resemble/internal/prefetch"
)

// Config holds the framework parameters. The defaults mirror the
// paper's Table III.
type Config struct {
	// HashBits is the fold-hash width used by the MLP preprocessing
	// (Table III: 16).
	HashBits uint
	// TableHashBits is the fold-hash width of the tabular variant
	// (Section V evaluates 4 and 8).
	TableHashBits uint
	// UsePC appends the (hashed) program counter to the state vector,
	// the ablation the paper studies in Table VI.
	UsePC bool

	// ReplayN is the replay-memory capacity (Table III: 2000).
	ReplayN int
	// Window is the prefetch reward window W (Table III: 256).
	Window int
	// Batch is the training batch size (Table III: 256).
	Batch int

	// EpsStart, EpsEnd and EpsDecay drive the decaying ε-greedy policy
	// (Table III: 0.95, 0.005, 80): ε = end + (start−end)·exp(−step/decay).
	EpsStart, EpsEnd, EpsDecay float64

	// PolicyInterval is I_p, the policy-net training interval
	// (Table III: 1); TargetInterval is I_t, the role-switch interval
	// (Table III: 20).
	PolicyInterval, TargetInterval int

	// Hidden is the MLP hidden-layer width (Table IV: H = 100).
	Hidden int
	// Gamma is the reward discount factor. Prefetch rewards are nearly
	// action-immediate (the next state barely depends on the chosen
	// suggestion), so a small discount trains far more stably than
	// Atari-style 0.99 — grid search lands at 0.3, consistent with the
	// paper obtaining its agent hyperparameters from grid search.
	Gamma float64
	// LR is the SGD learning rate of the policy net (MLP variant) or
	// the Q-table step size α (tabular variant).
	LR float64

	// Seed drives all stochastic choices (ε-greedy, replay sampling,
	// weight init) for reproducibility.
	Seed int64

	// FixedFrac enables the 16-bit fixed-point serving path when
	// positive: action selection runs on a Q(15-frac).frac snapshot of
	// the target network (the hardware representation of Table VIII),
	// refreshed at every role switch, while training stays in float64.
	// Valid values are 1..14 fractional bits; zero (the default) serves
	// from the float network. Table VIII's 16-bit budget corresponds to
	// frac = 10, which empirically keeps argmax agreement with the float
	// path above 99% (see TestQuantizedServingAgreement).
	FixedFrac uint

	// MaskFloor enables graceful degradation when positive: a prefetcher
	// whose resolved-prefetch accuracy stays below this floor for
	// MaskBadWindows consecutive evaluation windows is masked out of
	// action selection (both exploitation and exploration) until a
	// re-probe. Zero (the default) disables masking entirely and leaves
	// the controller's behavior bit-identical to earlier versions.
	MaskFloor float64
	// MaskWindow is the evaluation window length in accesses
	// (default 2048 when masking is enabled).
	MaskWindow int
	// MaskBadWindows is the number of consecutive below-floor windows
	// before an arm is masked (default 2).
	MaskBadWindows int
	// MaskMinSamples is the minimum number of resolved prefetches in a
	// window for the arm to be judged at all (default 16); quiet arms are
	// left alone.
	MaskMinSamples int
	// MaskReprobe is the number of accesses a masked arm stays masked
	// before it is given another chance (default 8×MaskWindow). Permanent
	// faults re-mask quickly after the probe; transient ones recover.
	MaskReprobe int
}

// DefaultConfig returns the paper's Table III configuration.
func DefaultConfig() Config {
	return Config{
		HashBits:       16,
		TableHashBits:  8,
		ReplayN:        2000,
		Window:         256,
		Batch:          256,
		EpsStart:       0.95,
		EpsEnd:         0.005,
		EpsDecay:       80,
		PolicyInterval: 1,
		TargetInterval: 20,
		Hidden:         100,
		Gamma:          0.3,
		LR:             0.1,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.HashBits == 0 || c.HashBits > 64 {
		return fmt.Errorf("core: hash bits %d out of range", c.HashBits)
	}
	if c.TableHashBits == 0 || c.TableHashBits > 16 {
		return fmt.Errorf("core: table hash bits %d out of range", c.TableHashBits)
	}
	if c.ReplayN <= 0 || c.Window <= 0 || c.Batch <= 0 {
		return fmt.Errorf("core: replay/window/batch must be positive")
	}
	if c.PolicyInterval <= 0 || c.TargetInterval <= 0 {
		return fmt.Errorf("core: update intervals must be positive")
	}
	if c.PolicyInterval > c.TargetInterval {
		return fmt.Errorf("core: policy interval I_p must not exceed target interval I_t")
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("core: hidden width must be positive")
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: gamma must be in [0,1)")
	}
	if c.EpsDecay <= 0 {
		return fmt.Errorf("core: epsilon decay must be positive")
	}
	if c.MaskFloor < 0 || c.MaskFloor > 1 {
		return fmt.Errorf("core: mask floor must be in [0,1]")
	}
	if c.MaskWindow < 0 || c.MaskBadWindows < 0 || c.MaskMinSamples < 0 || c.MaskReprobe < 0 {
		return fmt.Errorf("core: mask parameters must not be negative")
	}
	if c.FixedFrac > 14 {
		return fmt.Errorf("core: fixed-point fractional bits %d out of range [0,14]", c.FixedFrac)
	}
	return nil
}

// epsilon returns the exploration rate at a step count.
func (c Config) epsilon(step int) float64 {
	return c.EpsEnd + (c.EpsStart-c.EpsEnd)*expNeg(float64(step)/c.EpsDecay)
}

// Observation is one prefetcher's top suggestion for the current
// access (Equation 4's p_n(t)); Valid is false when the prefetcher had
// nothing to suggest (zero padding). All carries the prefetcher's full
// suggestion list for the access: the agent's action selects a
// prefetcher via its top suggestion, and the selected prefetcher then
// issues at its native degree (so ensemble and individual baselines are
// degree-fair). All aliases the prefetcher's scratch buffer and is only
// valid for the current access.
type Observation struct {
	Line    mem.Line
	Valid   bool
	Spatial bool
	All     []prefetch.Suggestion
}

// CollectObservations drives every prefetcher on the access and gathers
// their top suggestions, spatial predictions first (Equation 4's
// ordering). order[i] gives the index into prefetchers of observation
// i, so an action can be mapped back to its source.
func CollectObservations(prefetchers []prefetch.Prefetcher, a prefetch.AccessContext, obs []Observation, order []int) ([]Observation, []int) {
	obs = obs[:0]
	order = order[:0]
	// Spatial pass, then temporal pass, preserving configured order
	// within each class.
	for pass := 0; pass < 2; pass++ {
		wantSpatial := pass == 0
		for i, p := range prefetchers {
			if p.Spatial() != wantSpatial {
				continue
			}
			var o Observation
			o.Spatial = wantSpatial
			// Observe must be called exactly once per prefetcher per
			// access; the two-pass split only reorders collection, so
			// the call happens in the pass matching the prefetcher.
			all := p.Observe(a)
			if top, ok := prefetch.Top(all); ok {
				o.Line = top.Line
				o.Valid = true
				o.All = all
			}
			obs = append(obs, o)
			order = append(order, i)
		}
	}
	return obs, order
}

// StateVector preprocesses observations into the MLP input (Equations
// 5–6): spatial predictions become page-normalized absolute deltas,
// temporal predictions are hash-and-norm compressed; invalid slots are
// zero. When usePC is set, the hashed PC is appended.
func StateVector(dst []float64, obs []Observation, cur mem.Addr, pc uint64, hashBits uint, usePC bool) []float64 {
	dst = dst[:0]
	for _, o := range obs {
		if !o.Valid {
			dst = append(dst, 0)
			continue
		}
		if o.Spatial {
			// Spatial predictions are nominally within the page-sized
			// region (Eq 6 normalizes by 2^PAGE_BITS); anything beyond
			// saturates at 1 so a stray far prediction cannot blow up
			// the network input.
			delta := int64(mem.LineAddr(o.Line)) - int64(cur)
			v := float64(mem.Abs64(delta)) / float64(mem.PageSize)
			if v > 1 {
				v = 1
			}
			dst = append(dst, v)
		} else {
			dst = append(dst, float64(mem.FoldHash(mem.LineAddr(o.Line), hashBits))/float64(uint64(1)<<hashBits))
		}
	}
	if usePC {
		dst = append(dst, float64(mem.FoldHash(pc, hashBits))/float64(uint64(1)<<hashBits))
	}
	return dst
}

// TabularKey compresses observations into the tabular variant's state
// token source (Equation 12): every element is fold-hashed to bits bits
// and packed; invalid slots pack as zero. When usePC is set, the hashed
// PC contributes a final field. Packing more than 64 bits panics —
// configurations are static, so this is a programming error.
func TabularKey(obs []Observation, cur mem.Addr, pc uint64, bits uint, usePC bool) uint64 {
	fields := len(obs)
	if usePC {
		fields++
	}
	if uint(fields)*bits > 64 {
		panic(fmt.Sprintf("core: tabular key needs %d bits, max 64", uint(fields)*bits))
	}
	var key uint64
	for _, o := range obs {
		key <<= bits
		if !o.Valid {
			continue
		}
		if o.Spatial {
			delta := int64(mem.LineAddr(o.Line)) - int64(cur)
			key |= mem.FoldHashSigned(delta, bits)
		} else {
			key |= mem.FoldHash(mem.LineAddr(o.Line), bits)
		}
	}
	if usePC {
		key = key<<bits | mem.FoldHash(pc, bits)
	}
	return key
}

func expNeg(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}
