package core

import (
	"testing"

	"resemble/internal/mem"
	"resemble/internal/metrics"
	"resemble/internal/prefetch"
)

func TestTabularLearnsGoodPrefetcher(t *testing.T) {
	seq := makeLoop(64)
	pfs := []prefetch.Prefetcher{
		garbage("g1", true),
		oracle("oracle", false, seq),
		garbage("g2", false),
	}
	c := NewTabularController(testConfig(), pfs)
	driveLoop(t, c, seq, 6000)
	if got := tailMeanReward(c.RewardSeries(), 0.25); got < 0.5 {
		t.Errorf("tail mean reward = %.3f, want > 0.5", got)
	}
}

func TestTabularLearnsNPOnGarbage(t *testing.T) {
	seq := makeLoop(64)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{
		garbage("g1", true), garbage("g2", false),
	})
	driveLoop(t, c, seq, 6000)
	if got := tailMeanReward(c.RewardSeries(), 0.25); got < -0.2 {
		t.Errorf("tail mean reward = %.3f, want near 0 (NP)", got)
	}
}

func TestTabularUniqueStatesGrow(t *testing.T) {
	seq := makeLoop(64)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{
		oracle("o", true, seq), garbage("g", false),
	})
	driveLoop(t, c, seq, 1000)
	if c.UniqueStates() == 0 {
		t.Fatal("no states tokenized")
	}
	// The tokenized state count is bounded by the number of distinct
	// observations, far below the direct-index space 2^(B*S).
	if c.UniqueStates() > 1000 {
		t.Errorf("unique states = %d, expected sparse tokenization", c.UniqueStates())
	}
}

func TestTabularHashBitsTradeoff(t *testing.T) {
	// 4-bit hashing must produce no more unique states than 8-bit.
	seq := makeLoop(64)
	run := func(bits uint) int {
		cfg := testConfig()
		cfg.TableHashBits = bits
		c := NewTabularController(cfg, []prefetch.Prefetcher{
			oracle("o", true, seq), garbage("g", false),
		})
		driveLoop(t, c, seq, 2000)
		return c.UniqueStates()
	}
	if s4, s8 := run(4), run(8); s4 > s8 {
		t.Errorf("4-bit states %d > 8-bit states %d", s4, s8)
	}
}

func TestTabularDeterministic(t *testing.T) {
	seq := makeLoop(32)
	build := func() *TabularController {
		return NewTabularController(testConfig(), []prefetch.Prefetcher{
			oracle("o", true, seq), garbage("g", false),
		})
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		line := seq[i%len(seq)]
		ctx := prefetch.AccessContext{Index: i, Addr: mem.LineAddr(line), Line: line}
		la := append([]mem.Line(nil), a.OnAccess(ctx)...)
		lb := b.OnAccess(ctx)
		if len(la) != len(lb) {
			t.Fatalf("step %d: decisions diverge", i)
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("step %d: prefetch differs", i)
			}
		}
	}
}

func TestTabularReset(t *testing.T) {
	seq := makeLoop(32)
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{oracle("o", true, seq)})
	driveLoop(t, c, seq, 500)
	if c.UniqueStates() == 0 {
		t.Fatal("precondition: states learned")
	}
	c.Reset()
	if c.UniqueStates() != 0 || len(c.RewardSeries()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestTabularAdaptsToPhaseChange(t *testing.T) {
	seqA := makeLoop(64)
	seqB := make([]mem.Line, 64)
	for i := range seqB {
		seqB[i] = mem.Line(0x900000 + i*13)
	}
	phase := 0
	pfA := &fakePF{name: "pfA", spatial: true, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		if phase == 0 {
			return []prefetch.Suggestion{{Line: seqA[(a.Index+1)%64]}}
		}
		return []prefetch.Suggestion{{Line: 1 << 41}}
	}}
	pfB := &fakePF{name: "pfB", spatial: false, fn: func(a prefetch.AccessContext) []prefetch.Suggestion {
		if phase == 1 {
			return []prefetch.Suggestion{{Line: seqB[(a.Index+1)%64]}}
		}
		return []prefetch.Suggestion{{Line: 1 << 42}}
	}}
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{pfA, pfB})
	for i := 0; i < 4000; i++ {
		c.OnAccess(prefetch.AccessContext{Index: i, Addr: mem.LineAddr(seqA[i%64]), Line: seqA[i%64]})
	}
	phase = 1
	for i := 4000; i < 8000; i++ {
		c.OnAccess(prefetch.AccessContext{Index: i, Addr: mem.LineAddr(seqB[i%64]), Line: seqB[i%64]})
	}
	if got := metrics.Mean(c.RewardSeries()[7000:]); got < 0.3 {
		t.Errorf("reward after phase change = %.3f, want > 0.3", got)
	}
}

func TestTabularActionNames(t *testing.T) {
	c := NewTabularController(testConfig(), []prefetch.Prefetcher{
		garbage("t1", false), garbage("s1", true),
	})
	names := c.ActionNames()
	if len(names) != 3 || names[0] != "s1" || names[2] != "NP" {
		t.Errorf("names = %v", names)
	}
}

func TestTabularPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty prefetcher list did not panic")
		}
	}()
	NewTabularController(testConfig(), nil)
}
