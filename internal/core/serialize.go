package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"resemble/internal/nn"
)

// Model persistence, mirroring the paper artifact's saved models (its
// demo stores the trained MLP/table as .pkl files). The MLP controller
// saves its target network (the inference network); the tabular
// controller saves the token map and Q-rows.

// SaveModel writes the controller's inference network.
func (c *Controller) SaveModel(w io.Writer) error {
	return c.target.Save(w)
}

// LoadModel replaces both networks with a previously saved snapshot.
// The snapshot must match the controller's architecture.
func (c *Controller) LoadModel(r io.Reader) error {
	m, err := nn.LoadMLP(r)
	if err != nil {
		return err
	}
	want := c.target.Sizes()
	got := m.Sizes()
	match := len(got) == len(want)
	for i := 0; match && i < len(want); i++ {
		match = got[i] == want[i]
	}
	if !match {
		return fmt.Errorf("core: model architecture %v, controller needs %v", got, want)
	}
	c.target.CopyWeightsFrom(m)
	c.policy.CopyWeightsFrom(m)
	return nil
}

// Q-table snapshot format (little-endian):
//
//	magic   [8]byte "RSMTAB01"
//	actions uint32
//	rows    uint32
//	rows × { key uint64, actions × float64 }

var tabMagic = [8]byte{'R', 'S', 'M', 'T', 'A', 'B', '0', '1'}

// ErrBadTable is returned when decoding a stream that is not a Q-table
// snapshot.
var ErrBadTable = errors.New("core: bad table magic")

// SaveModel writes the tokenized Q-table.
func (c *TabularController) SaveModel(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(tabMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(c.NumActions())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.tokens))); err != nil {
		return err
	}
	for key, tok := range c.tokens {
		if err := binary.Write(bw, binary.LittleEndian, key); err != nil {
			return err
		}
		for _, q := range c.q[tok] {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(q)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadModel replaces the Q-table with a previously saved snapshot. The
// stream is fully decoded and validated before any controller state is
// touched, so a truncated or corrupt snapshot leaves the controller
// exactly as it was.
func (c *TabularController) LoadModel(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: reading table magic: %w", err)
	}
	if magic != tabMagic {
		return ErrBadTable
	}
	var actions, rows uint32
	if err := binary.Read(br, binary.LittleEndian, &actions); err != nil {
		return fmt.Errorf("core: reading table header: %w", noEOF(err))
	}
	if int(actions) != c.NumActions() {
		return fmt.Errorf("core: table has %d actions, controller needs %d", actions, c.NumActions())
	}
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return fmt.Errorf("core: reading table header: %w", noEOF(err))
	}
	if rows > 1<<26 {
		return fmt.Errorf("core: unreasonable row count %d", rows)
	}
	// Stage: decode everything into locals first.
	tokens := make(map[uint64]int, rows)
	q := make([][]float64, 0, min(int(rows), 1<<16))
	for i := uint32(0); i < rows; i++ {
		var key uint64
		if err := binary.Read(br, binary.LittleEndian, &key); err != nil {
			return fmt.Errorf("core: reading table row %d: %w", i, noEOF(err))
		}
		if _, dup := tokens[key]; dup {
			return fmt.Errorf("core: table row %d: duplicate key %#x", i, key)
		}
		row := make([]float64, actions)
		for j := range row {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("core: reading table row %d: %w", i, noEOF(err))
			}
			row[j] = math.Float64frombits(bits)
		}
		tokens[key] = len(q)
		q = append(q, row)
	}
	// Install only after the whole snapshot decoded cleanly.
	c.tokens = tokens
	c.q = q
	return nil
}

// noEOF maps a clean EOF inside a structure to ErrUnexpectedEOF: once
// past the magic the stream ending early is always a truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
