package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resemble/internal/mem"
)

// Property: the reward tracker resolves every prefetch exactly once —
// each Add(seq) eventually appears in exactly one of hits or expired,
// never both, never twice.
func TestRewardTrackerResolvesExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewRewardTracker(16)
		resolved := map[int]int{}
		added := map[int]bool{}
		var hits, exp []int
		for seq := 0; seq < 500; seq++ {
			line := mem.Line(rng.Intn(32))
			hits, exp = tr.Resolve(seq, line, hits, exp)
			for _, s := range hits {
				resolved[s]++
			}
			for _, s := range exp {
				resolved[s]++
			}
			if rng.Intn(2) == 0 {
				tr.Add(seq, mem.Line(rng.Intn(32)))
				added[seq] = true
			}
		}
		// Flush the stragglers far past the window.
		hits, exp = tr.Resolve(10_000, 0, hits, exp)
		for _, s := range exp {
			resolved[s]++
		}
		for _, s := range hits {
			resolved[s]++
		}
		for seq := range added {
			if resolved[seq] != 1 {
				return false
			}
		}
		for seq, n := range resolved {
			if !added[seq] || n != 1 {
				return false
			}
		}
		return tr.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: hits are only reported for matching lines within the
// window, and expiries only past it.
func TestRewardTrackerTimingBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const window = 20
		tr := NewRewardTracker(window)
		addTime := map[int]int{}
		addLine := map[int]mem.Line{}
		var hits, exp []int
		for seq := 0; seq < 300; seq++ {
			line := mem.Line(rng.Intn(16))
			hits, exp = tr.Resolve(seq, line, hits, exp)
			for _, s := range hits {
				if addLine[s] != line || seq-addTime[s] >= window || seq <= addTime[s] {
					return false
				}
			}
			for _, s := range exp {
				if seq-addTime[s] < window {
					return false
				}
			}
			tr.Add(seq, mem.Line(rng.Intn(16)))
			addTime[seq] = seq
			addLine[seq] = mem.Line(0)
			// Re-read what we actually added (last Add wins for seq).
			addLine[seq] = tr.recs[len(tr.recs)-1].line
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the replay memory never returns a transition whose Seq
// disagrees with the requested one, and live count never exceeds
// capacity.
func TestReplayConsistencyUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(32)
		r := NewReplay(capacity)
		next := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0:
				r.Push(Transition{Seq: next, State: []float64{float64(next)}})
				next++
			case 1:
				if next > 0 {
					seq := rng.Intn(next)
					r.SetReward(seq, 1)
					if tr := r.Get(seq); tr != nil && (tr.Seq != seq || !tr.HasReward) {
						return false
					}
				}
			case 2:
				if next > 0 {
					seq := rng.Intn(next)
					r.SetNext(seq, []float64{1, 2})
					if tr := r.Get(seq); tr != nil && tr.Seq != seq {
						return false
					}
				}
			case 3:
				got := r.SampleValid(rng, 8, nil)
				for _, tr := range got {
					if !tr.Valid() {
						return false
					}
				}
			}
			if r.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: state vectors are always bounded: every element lies in
// [0, 1] regardless of the observation content.
func TestStateVectorBounded(t *testing.T) {
	f := func(lines []uint64, cur uint64, pc uint64) bool {
		obs := make([]Observation, 0, len(lines))
		for i, l := range lines {
			obs = append(obs, Observation{
				Line:    l,
				Valid:   i%3 != 0,
				Spatial: i%2 == 0,
			})
		}
		s := StateVector(nil, obs, cur, pc, 16, true)
		for _, v := range s {
			if v < 0 || v > 1 {
				return false
			}
		}
		return len(s) == len(obs)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the tabular key is a pure function of (observations, cur,
// pc, bits, usePC) and never exceeds the packed width.
func TestTabularKeyPure(t *testing.T) {
	f := func(l1, l2, cur, pc uint64) bool {
		obs := []Observation{
			{Line: l1, Valid: true, Spatial: true},
			{Line: l2, Valid: true},
		}
		const bits = 8
		k1 := TabularKey(obs, cur, pc, bits, true)
		k2 := TabularKey(obs, cur, pc, bits, true)
		if k1 != k2 {
			return false
		}
		return k1 < 1<<(3*bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
