package core

import (
	"math/rand"

	"resemble/internal/telemetry"
)

// armMask implements graceful degradation: an input prefetcher whose
// resolved-prefetch accuracy stays below a floor for several
// consecutive windows is masked out of action selection entirely —
// excluded from the exploitation argmax and from uniform exploration —
// so a faulty or pathologically mismatched prefetcher cannot keep
// polluting the cache through ε-greedy draws. Masked arms are
// periodically re-probed so transient faults recover.
//
// With MaskFloor <= 0 every method is a no-op and, critically, the
// exploration path consumes the RNG stream exactly as before, so
// existing results and checkpoints are unaffected.
type armMask struct {
	floor      float64
	window     uint64
	badLimit   int
	minSamples uint64
	reprobe    uint64

	n uint64 // accesses observed

	// Window baselines (cumulative counters at the last boundary) and
	// per-arm judgment. All are sized to the arm count (NP excluded —
	// no-prefetch is always allowed).
	lastUseful  []uint64
	lastUseless []uint64
	badStreak   []int
	masked      []bool
	maskedAt    []uint64

	allowedBuf []int // scratch for exploration draws

	cMasked   *telemetry.Counter
	cReprobed *telemetry.Counter
}

func newArmMask(cfg Config, numActions int) armMask {
	m := armMask{
		floor:      cfg.MaskFloor,
		window:     uint64(cfg.MaskWindow),
		badLimit:   cfg.MaskBadWindows,
		minSamples: uint64(cfg.MaskMinSamples),
		reprobe:    uint64(cfg.MaskReprobe),
	}
	if m.floor <= 0 {
		return m
	}
	if m.window == 0 {
		m.window = 2048
	}
	if m.badLimit == 0 {
		m.badLimit = 2
	}
	if m.minSamples == 0 {
		m.minSamples = 16
	}
	if m.reprobe == 0 {
		m.reprobe = 8 * m.window
	}
	arms := numActions - 1
	m.lastUseful = make([]uint64, arms)
	m.lastUseless = make([]uint64, arms)
	m.badStreak = make([]int, arms)
	m.masked = make([]bool, arms)
	m.maskedAt = make([]uint64, arms)
	return m
}

func (m *armMask) enabled() bool { return m.floor > 0 }

// attach registers the mask's instruments (nil-safe handles).
func (m *armMask) attach(r *telemetry.Registry) {
	m.cMasked = r.Counter("core.mask.masked")
	m.cReprobed = r.Counter("core.mask.reprobed")
}

// isMasked reports whether action i is currently masked. NP (and any
// index beyond the arm count) is never masked.
func (m *armMask) isMasked(i int) bool {
	return m.enabled() && i < len(m.masked) && m.masked[i]
}

func (m *armMask) anyMasked() bool {
	if !m.enabled() {
		return false
	}
	for _, v := range m.masked {
		if v {
			return true
		}
	}
	return false
}

// activeCount returns how many arms are currently masked.
func (m *armMask) activeCount() int {
	n := 0
	for _, v := range m.masked {
		if v {
			n++
		}
	}
	return n
}

// tick advances the mask by one access, evaluating arms at window
// boundaries against the cumulative useful/useless counters and
// un-masking arms whose re-probe timer expired.
func (m *armMask) tick(useful, useless []uint64) {
	if !m.enabled() {
		return
	}
	m.n++
	for i := range m.masked {
		if m.masked[i] && m.n-m.maskedAt[i] >= m.reprobe {
			m.masked[i] = false
			m.badStreak[i] = 0
			// Restart the probe window from the current counters so stale
			// pre-mask outcomes don't re-condemn the arm instantly.
			m.lastUseful[i] = useful[i]
			m.lastUseless[i] = useless[i]
			m.cReprobed.Inc()
		}
	}
	if m.n%m.window != 0 {
		return
	}
	for i := range m.masked {
		if m.masked[i] {
			continue
		}
		good := useful[i] - m.lastUseful[i]
		bad := useless[i] - m.lastUseless[i]
		decided := good + bad
		if decided >= m.minSamples && float64(good) < m.floor*float64(decided) {
			m.badStreak[i]++
			if m.badStreak[i] >= m.badLimit {
				m.masked[i] = true
				m.maskedAt[i] = m.n
				m.cMasked.Inc()
			}
		} else {
			m.badStreak[i] = 0
		}
		m.lastUseful[i] = useful[i]
		m.lastUseless[i] = useless[i]
	}
}

// explore draws a uniform exploration action over the unmasked action
// set. With nothing masked it is exactly rng.Intn(numActions) — one
// draw, same stream as the pre-mask code.
func (m *armMask) explore(rng *rand.Rand, numActions int) int {
	if !m.anyMasked() {
		return rng.Intn(numActions)
	}
	m.allowedBuf = m.allowedBuf[:0]
	for i := 0; i < numActions; i++ {
		if !m.isMasked(i) {
			m.allowedBuf = append(m.allowedBuf, i)
		}
	}
	return m.allowedBuf[rng.Intn(len(m.allowedBuf))]
}

// maskState is the gob mirror for checkpointing.
type maskState struct {
	N           uint64
	LastUseful  []uint64
	LastUseless []uint64
	BadStreak   []int
	Masked      []bool
	MaskedAt    []uint64
}

func (m *armMask) saveState() maskState {
	return maskState{
		N:          m.n,
		LastUseful: m.lastUseful, LastUseless: m.lastUseless,
		BadStreak: m.badStreak, Masked: m.masked, MaskedAt: m.maskedAt,
	}
}

// loadState restores the judgment state. Slice lengths are normalized
// to the arm count so snapshots from a masking-disabled run load into a
// masking-disabled controller (all nil) and vice versa is rejected by
// length.
func (m *armMask) loadState(st maskState, numActions int) {
	if !m.enabled() {
		return
	}
	arms := numActions - 1
	m.n = st.N
	m.lastUseful = orZeros(st.LastUseful, arms)
	m.lastUseless = orZeros(st.LastUseless, arms)
	m.badStreak = orZeroInts(st.BadStreak, arms)
	m.maskedAt = orZeros(st.MaskedAt, arms)
	if st.Masked == nil {
		st.Masked = make([]bool, arms)
	}
	m.masked = st.Masked
}

func orZeroInts(v []int, n int) []int {
	if v == nil {
		return make([]int, n)
	}
	return v
}
