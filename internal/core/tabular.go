package core

import (
	"math/rand"

	"resemble/internal/checkpoint"
	"resemble/internal/mem"
	"resemble/internal/prefetch"
	"resemble/internal/telemetry"
)

// TabularController is the tabular variant of ReSemble (Section IV-F):
// a Q-table indexed by tokenized hash-compressed states. Address space
// is reduced with a B-bit fold hash (Equation 12) and the sparse state
// space is compressed by tokenizing the unique states actually seen
// (Figure 5). Instead of a replay memory it keeps a small buffer of
// pending transitions and applies one Q-learning update (Equation 13)
// per transition as soon as its reward is available.
type TabularController struct {
	cfg         Config
	prefetchers []prefetch.Prefetcher

	tokens map[uint64]int // state key -> token (Q-table row)
	q      [][]float64    // token -> Q-values per action

	tracker *RewardTracker
	rngSrc  *checkpoint.RandSource
	rng     *rand.Rand

	step    int
	prevSeq int

	// pending holds transitions awaiting reward and/or next state,
	// bounded by the reward window.
	pending map[int]*tabTransition

	obs    []Observation
	order  []int
	out    []mem.Line
	hitSeq []int
	expSeq []int

	rewards []float64
	acts    []int8

	// Telemetry accumulators (always maintained) and handles (nil
	// unless AttachTelemetry was called).
	rewardSum    float64
	actionCounts []uint64
	armIssued    []uint64
	armUseful    []uint64
	armUseless   []uint64
	tel          *telemetry.Collector
	hTD          *telemetry.Histogram
	cUpdates     *telemetry.Counter
	qWindow      []float64
	qPending     bool

	// Graceful degradation: persistently useless arms are masked out of
	// selection (no-op unless cfg.MaskFloor > 0).
	mask armMask

	// Explainability: decisions sampled by the collector wait here until
	// the reward window resolves them (bounded by the window size).
	explainPending map[int]*telemetry.Decision
	explainNames   []string
}

// AttachTelemetry implements telemetry.Attachable.
func (c *TabularController) AttachTelemetry(t *telemetry.Collector) {
	c.tel = t
	c.qPending = t != nil
	r := t.Registry()
	c.hTD = r.Histogram("core.tabular.td_error")
	c.cUpdates = r.Counter("core.tabular.updates")
	r.Gauge("core.tabular.unique_states").Set(float64(len(c.tokens)))
	c.mask.attach(r)
	for _, p := range c.prefetchers {
		if a, ok := p.(telemetry.Attachable); ok {
			a.AttachTelemetry(t)
		}
	}
}

// TelemetryStats implements telemetry.ControllerProbe; QValues is
// drained by the call.
func (c *TabularController) TelemetryStats() telemetry.ControllerStats {
	qv := append([]float64(nil), c.qWindow...)
	c.qWindow = c.qWindow[:0]
	if c.tel != nil {
		c.tel.Registry().Gauge("core.tabular.unique_states").Set(float64(len(c.tokens)))
	}
	return telemetry.ControllerStats{
		Steps:        c.step,
		Epsilon:      c.cfg.epsilon(c.step),
		RewardSum:    c.rewardSum,
		ActionNames:  c.ActionNames(),
		ActionCounts: c.actionCounts,
		ArmIssued:    c.armIssued,
		ArmUseful:    c.armUseful,
		ArmUseless:   c.armUseless,
		QValues:      qv,
	}
}

type tabTransition struct {
	token   int
	action  int
	np      bool
	nextTok int
	hasNext bool
	// outstanding counts unresolved issued lines; acc accumulates their
	// ±1 outcomes (same degree-aware reward as the MLP variant).
	outstanding int
	acc         float64
}

// NewTabularController builds the tabular ensemble controller. It
// panics on invalid configuration or an empty prefetcher list.
func NewTabularController(cfg Config, prefetchers []prefetch.Prefetcher) *TabularController {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(prefetchers) == 0 {
		panic("core: controller needs at least one prefetcher")
	}
	c := &TabularController{cfg: cfg, prefetchers: prefetchers}
	c.initModel()
	return c
}

func (c *TabularController) initModel() {
	c.rngSrc = checkpoint.NewRandSource(c.cfg.Seed)
	c.rng = rand.New(c.rngSrc)
	c.tokens = make(map[uint64]int)
	c.q = c.q[:0]
	c.tracker = NewRewardTracker(c.cfg.Window)
	c.pending = make(map[int]*tabTransition)
	c.step = 0
	c.prevSeq = -1
	c.rewards = c.rewards[:0]
	c.acts = c.acts[:0]
	c.rewardSum = 0
	c.actionCounts = make([]uint64, c.NumActions())
	c.armIssued = make([]uint64, c.NumActions())
	c.armUseful = make([]uint64, c.NumActions())
	c.armUseless = make([]uint64, c.NumActions())
	c.qWindow = c.qWindow[:0]
	c.mask = newArmMask(c.cfg, c.NumActions())
	c.explainPending = nil
	c.explainNames = nil
}

// MaskedArms reports how many input prefetchers are currently masked
// out of selection (always 0 with masking disabled).
func (c *TabularController) MaskedArms() int { return c.mask.activeCount() }

// ArmMasked reports whether input prefetcher i is currently masked.
func (c *TabularController) ArmMasked(i int) bool { return c.mask.isMasked(i) }

// Name implements sim.Source.
func (c *TabularController) Name() string { return "resemble-t" }

// NumActions returns |A| = one per prefetcher plus NP.
func (c *TabularController) NumActions() int { return len(c.prefetchers) + 1 }

func (c *TabularController) npAction() int { return len(c.prefetchers) }

// Reset implements sim.Source.
func (c *TabularController) Reset() {
	for _, p := range c.prefetchers {
		p.Reset()
	}
	c.initModel()
}

// UniqueStates returns the number of tokenized states, the quantity
// Table IV's tokenized-table size is based on.
func (c *TabularController) UniqueStates() int { return len(c.tokens) }

// optimisticInit is the initial Q-value of prefetching actions in a
// fresh row. Starting above NP's 0 makes the table try a prefetcher
// once in states it has never seen instead of freezing on NP — with a
// sparse hashed state space (especially for temporal predictions, whose
// hashed addresses rarely repeat exactly) cold rows are common, and
// pessimistic zeros would make the tabular variant mostly idle.
const optimisticInit = 0.5

// tokenOf tokenizes a state key, allocating a fresh optimistic Q-table
// row on first sight.
func (c *TabularController) tokenOf(key uint64) int {
	if tok, ok := c.tokens[key]; ok {
		return tok
	}
	tok := len(c.q)
	c.tokens[key] = tok
	row := make([]float64, c.NumActions())
	for i := 0; i < c.npAction(); i++ {
		row[i] = optimisticInit
	}
	c.q = append(c.q, row)
	return tok
}

// OnAccess implements sim.Source.
func (c *TabularController) OnAccess(a prefetch.AccessContext) []mem.Line {
	seq := c.step
	c.step++

	c.obs, c.order = CollectObservations(c.prefetchers, a, c.obs, c.order)
	key := TabularKey(c.obs, a.Addr, a.PC, c.cfg.TableHashBits, c.cfg.UsePC)
	tok := c.tokenOf(key)

	// Reward resolution, then immediate Q updates for resolved
	// transitions that already know their successor state.
	c.hitSeq, c.expSeq = c.tracker.Resolve(seq, a.Line, c.hitSeq, c.expSeq)
	for _, s := range c.hitSeq {
		c.armUseful[c.acts[s]]++
		c.applyReward(s, 1)
	}
	for _, s := range c.expSeq {
		c.armUseless[c.acts[s]]++
		c.applyReward(s, -1)
	}

	// Fill the previous transition's successor token.
	if t, ok := c.pending[c.prevSeq]; ok && !t.hasNext {
		t.nextTok = tok
		t.hasNext = true
	}

	// ε-greedy action over the Q row; exploitation masks padded
	// (invalid) suggestions since picking one just executes NP, and
	// breaks near-ties randomly (deterministic argmax would freeze on
	// one of several equally good arms in a repeated state, while the
	// MLP variant naturally alternates through approximation noise).
	c.mask.tick(c.armUseful, c.armUseless)
	var action int
	explored := false
	if c.rng.Float64() < c.cfg.epsilon(seq) {
		explored = true
		action = c.mask.explore(c.rng, c.NumActions())
	} else {
		if c.qPending {
			c.qWindow = append(c.qWindow, c.q[tok]...)
		}
		action = c.pickValid(c.q[tok])
	}
	if c.tel.ExplainTick() {
		c.explain(seq, key, tok, action, explored)
	}

	c.out = c.out[:0]
	t := &tabTransition{token: tok, action: action}
	if action == c.npAction() || !c.obs[action].Valid {
		t.np = true
		c.recordReward(seq, 0)
		// NP reward is 0 immediately; the update happens once the
		// successor is known.
	} else {
		for _, s := range c.obs[action].All {
			c.out = append(c.out, s.Line)
			c.tracker.Add(seq, s.Line)
		}
		t.outstanding = len(c.out)
		c.armIssued[action] += uint64(len(c.out))
	}
	c.recordAction(seq, action)
	c.pending[seq] = t
	c.prevSeq = seq
	if c.tel != nil {
		c.tel.Trace(telemetry.Event{Seq: uint64(seq), Kind: telemetry.KindAction, PC: a.PC, Addr: uint64(a.Addr), Action: int8(action)})
	}

	// NP transitions resolve as soon as the successor arrives.
	if prev, ok := c.pending[seq-1]; ok && prev.np && prev.hasNext {
		c.update(prev, 0)
		delete(c.pending, seq-1)
	}
	return c.out
}

// applyReward adds one line's outcome to its transition and applies the
// Q update once every issued line has resolved.
func (c *TabularController) applyReward(seq int, r float64) {
	t, ok := c.pending[seq]
	if !ok {
		return
	}
	t.acc += r
	t.outstanding--
	if t.outstanding > 0 {
		return
	}
	c.recordReward(seq, t.acc)
	c.update(t, t.acc)
	delete(c.pending, seq)
}

// update applies Equation 13 to one transition.
func (c *TabularController) update(t *tabTransition, r float64) {
	var future float64
	if t.hasNext {
		future = c.cfg.Gamma * maxf(c.q[t.nextTok])
	}
	qsa := &c.q[t.token][t.action]
	if c.hTD != nil {
		c.hTD.Observe(absf(r + future - *qsa))
	}
	*qsa += c.cfg.LR * (r + future - *qsa)
	c.cUpdates.Inc()
}

func (c *TabularController) recordReward(seq int, r float64) {
	for len(c.rewards) <= seq {
		c.rewards = append(c.rewards, 0)
	}
	c.rewards[seq] = r
	c.rewardSum += r
	if c.tel != nil && r != 0 {
		c.tel.Trace(telemetry.Event{Seq: uint64(seq), Kind: telemetry.KindReward, Reward: r})
	}
	if d, ok := c.explainPending[seq]; ok {
		delete(c.explainPending, seq)
		d.Reward = r
		d.Resolved = true
		c.tel.RecordDecision(*d)
	}
}

// explain registers a sampled decision record for seq; recordReward
// emits it once the reward window resolves the decision.
func (c *TabularController) explain(seq int, key uint64, tok, action int, explored bool) {
	d := &telemetry.Decision{
		Seq:        uint64(seq),
		Epsilon:    c.cfg.epsilon(seq),
		Explored:   explored,
		StateKey:   key,
		Q:          append([]float64(nil), c.q[tok]...),
		Action:     action,
		ActionName: c.actionName(action),
	}
	if c.mask.anyMasked() {
		for i := 0; i < c.NumActions(); i++ {
			if c.mask.isMasked(i) {
				d.MaskedArms = append(d.MaskedArms, c.actionName(i))
			}
		}
	}
	if c.explainPending == nil {
		c.explainPending = map[int]*telemetry.Decision{}
	}
	c.explainPending[seq] = d
}

// actionName resolves one action index to its display name, caching
// the ActionNames slice (stable for the controller's lifetime).
func (c *TabularController) actionName(i int) string {
	if c.explainNames == nil {
		c.explainNames = c.ActionNames()
	}
	if i < 0 || i >= len(c.explainNames) {
		return "?"
	}
	return c.explainNames[i]
}

func (c *TabularController) recordAction(seq, a int) {
	for len(c.acts) <= seq {
		c.acts = append(c.acts, 0)
	}
	c.acts[seq] = int8(a)
	c.actionCounts[a]++
}

// RewardSeries returns the resolved reward per access (aliases internal
// state).
func (c *TabularController) RewardSeries() []float64 { return c.rewards }

// ActionSeries returns the chosen action per access (aliases internal
// state).
func (c *TabularController) ActionSeries() []int8 { return c.acts }

// ActionNames returns a label per action index.
func (c *TabularController) ActionNames() []string {
	names := make([]string, 0, c.NumActions())
	for pass := 0; pass < 2; pass++ {
		wantSpatial := pass == 0
		for _, p := range c.prefetchers {
			if p.Spatial() == wantSpatial {
				names = append(names, p.Name())
			}
		}
	}
	return append(names, "NP")
}

// pickValid returns the highest-Q action among valid suggestions and
// NP, choosing uniformly among actions whose Q lies within a small band
// of the maximum.
func (c *TabularController) pickValid(q []float64) int {
	best := c.npAction()
	for i := range c.obs {
		if c.obs[i].Valid && !c.mask.isMasked(i) && q[i] > q[best] {
			best = i
		}
	}
	// Near-tie band: 1% of |Q_max| with a small absolute floor, so only
	// genuinely equivalent arms alternate.
	band := 0.01 * absf(q[best])
	if band < 1e-6 {
		band = 1e-6
	}
	ties := 0
	pick := best
	for i := 0; i <= c.npAction(); i++ {
		if i < c.npAction() && (!c.obs[i].Valid || c.mask.isMasked(i)) {
			continue
		}
		if q[i] >= q[best]-band {
			ties++
			if c.rng.Intn(ties) == 0 {
				pick = i
			}
		}
	}
	return pick
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
