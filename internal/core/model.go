package core

import (
	"fmt"
	"math"
)

// ModelSize describes the parameter/entry count of one controller
// configuration (Table IV).
type ModelSize struct {
	Model      string
	Expression string
	Config     string
	// Entries is the number of parameters (MLP) or Q-table entries.
	Entries float64
}

// ModelSizes reproduces Table IV for state dimension S, action
// dimension A, MLP hidden width H, and tabular hash widths bits.
// uniqueStates maps a hash width to the observed unique-state count for
// the tokenized rows (the paper reports 37.3K at B=4 and 592K at B=8
// on its traces; pass measured values to reproduce with live data).
func ModelSizes(s, a, h int, bits []uint, uniqueStates map[uint]int) []ModelSize {
	out := []ModelSize{{
		Model:      "MLP",
		Expression: "SH + HA + H + A",
		Config:     fmt.Sprintf("H = %d", h),
		Entries:    float64(s*h + h*a + h + a),
	}}
	for _, b := range bits {
		out = append(out, ModelSize{
			Model:      "Table (direct)",
			Expression: "2^(BS) * A",
			Config:     fmt.Sprintf("B = %d", b),
			Entries:    math.Pow(2, float64(uint(s)*b)) * float64(a),
		})
	}
	for _, b := range bits {
		us := uniqueStates[b]
		out = append(out, ModelSize{
			Model:      "Table (token)",
			Expression: "2A * #unique states",
			Config:     fmt.Sprintf("B = %d", b),
			Entries:    float64(2 * a * us),
		})
	}
	return out
}

// LatencyEstimate reproduces Table VII / Equation 14: the end-to-end
// inference latency of a fully parallel hardware implementation, in
// cycles.
type LatencyEstimate struct {
	HashCycles      int // T_h = ceil(log2(ceil(addrBits/hashBits)))
	NormCycles      int // T_n: one constant multiplication
	HiddenMMCycles  int // T_mm_h = ceil(1 + log2 S)
	OutputMMCycles  int // T_mm_o = ceil(1 + log2 H)
	ActivationCycle int // T_av × 2: lookup tables
	ActionCycles    int // T_qv = ceil(log2 A)
	Total           int
}

// EstimateLatency computes the Table VII decomposition by evaluating
// Equation 14's formulas directly. Note that for the paper's own
// configuration (addrBits 64, hashBits 16, S=4, H=100, A=5) the printed
// formulas give T_mm_h=3 and T_mm_o=8 (total 19), while the published
// table lists 5 and 9 (total 22) — the published values appear to
// include implementation pipeline stages the formulas omit. Use
// PaperTable7 for the published reference row.
func EstimateLatency(addrBits int, hashBits uint, s, h, a int) LatencyEstimate {
	e := LatencyEstimate{
		HashCycles:      ceilLog2(ceilDiv(addrBits, int(hashBits))),
		NormCycles:      1,
		HiddenMMCycles:  int(math.Ceil(1 + math.Log2(float64(s)))),
		OutputMMCycles:  int(math.Ceil(1 + math.Log2(float64(h)))),
		ActivationCycle: 2,
		ActionCycles:    ceilLog2(a),
	}
	e.Total = e.HashCycles + e.NormCycles + e.HiddenMMCycles + e.OutputMMCycles + e.ActivationCycle + e.ActionCycles
	return e
}

// PaperTable7 returns the latency decomposition exactly as published
// in the paper's Table VII (total 22 cycles), for side-by-side
// comparison with EstimateLatency's formula evaluation.
func PaperTable7() LatencyEstimate {
	return LatencyEstimate{
		HashCycles:      2,
		NormCycles:      1,
		HiddenMMCycles:  5,
		OutputMMCycles:  9,
		ActivationCycle: 2,
		ActionCycles:    3,
		Total:           22,
	}
}

// StorageEstimate reproduces Table VIII: the storage overhead of the
// framework in bytes, split into the on-chip MLPs and the off-chip
// replay memory.
type StorageEstimate struct {
	// MLPBytes covers both networks at 16-bit fixed point.
	MLPBytes int
	// ReplayBytes covers the transition entries plus the prefetch
	// window records.
	ReplayBytes int
}

// EstimateStorage computes Table VIII for the given configuration. The
// paper's numbers (S=4, H=100, A=5, replay 2000, window 256, 58-bit
// prefetch records) are 4.2 KB on-chip and ~34.8 KB off-chip.
func EstimateStorage(s, h, a, replayN, window int) StorageEstimate {
	params := s*h + h*a + h + a
	mlpBits := 2 /*networks*/ * params * 16
	// Each transition: two states (S × 16b each), a 3-bit action and a
	// 1-bit reward; the prefetch window stores 58-bit line addresses.
	transitionBits := replayN * (2*s*16 + 3 + 1)
	windowBits := window * 58
	return StorageEstimate{
		MLPBytes:    mlpBits / 8,
		ReplayBytes: (transitionBits + windowBits) / 8,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}
