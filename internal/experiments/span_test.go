package experiments

import (
	"io"
	"sort"
	"testing"

	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// spanIdentity strips timestamps: the determinism contract covers the
// tree structure (IDs, parents, tracks, names), not wall-clock.
type spanIdentity struct {
	ID, Parent telemetry.SpanID
	Track      string
	Name       string
}

// spansAt runs fig1c at the given job count with an in-memory
// collector and returns the normalized span set.
func spansAt(t *testing.T, jobs int) []spanIdentity {
	t.Helper()
	tel, err := telemetry.New(telemetry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{
		Accesses: 3000,
		Batch:    64,
		Out:      io.Discard,
		Jobs:     jobs,
		Sim:      []sim.Option{sim.WithTelemetry(tel)},
		Traces:   trace.NewCache(0),
	}
	if _, err := Fig1c(o); err != nil {
		t.Fatal(err)
	}
	spans := tel.Spans()
	ids := make([]spanIdentity, len(spans))
	for i, s := range spans {
		ids[i] = spanIdentity{s.ID, s.Parent, s.Track, s.Name}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].ID != ids[j].ID {
			return ids[i].ID < ids[j].ID
		}
		return ids[i].Name < ids[j].Name
	})
	return ids
}

// TestPoolSpanDeterminism extends the pool's golden contract to the
// span tree: a serial run and an 8-way pooled run must produce the
// same set of (ID, Parent, Track, Name) spans, and every parent
// pointer must resolve inside the set. scripts/check.sh runs this
// under -race.
func TestPoolSpanDeterminism(t *testing.T) {
	serial := spansAt(t, 1)
	pooled := spansAt(t, 8)
	if len(serial) == 0 {
		t.Fatal("serial run recorded no spans; the comparison is vacuous")
	}
	if len(serial) != len(pooled) {
		t.Fatalf("span counts diverge: serial %d, pooled %d", len(serial), len(pooled))
	}
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Errorf("span %d diverges:\n  serial %+v\n  pooled %+v", i, serial[i], pooled[i])
		}
	}
	for _, set := range [][]spanIdentity{serial, pooled} {
		ids := map[telemetry.SpanID]bool{}
		for _, s := range set {
			ids[s.ID] = true
		}
		for _, s := range set {
			if s.Parent != 0 && !ids[s.Parent] {
				t.Errorf("span %016x (%s on %s) has dangling parent %016x",
					uint64(s.ID), s.Name, s.Track, uint64(s.Parent))
			}
		}
	}
	// Per-task tracks are what keep pooled ordinals aligned with the
	// serial path; make sure they are actually in play.
	hasTask := false
	for _, s := range serial {
		if len(s.Track) > 5 && s.Track[:5] == "task:" {
			hasTask = true
			break
		}
	}
	if !hasTask {
		t.Error("no task:<i> tracks recorded; pool span instrumentation is not wired")
	}
}
