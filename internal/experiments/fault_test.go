package experiments

import (
	"io"
	"reflect"
	"testing"
	"time"

	"resemble/internal/core"
	"resemble/internal/faults"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// degradationRun runs the tabular ensemble with the BO input broken by
// the given fault and returns the result, the number of masked arms,
// and whether the faulted arm specifically ended up masked. The tabular
// controller is the vulnerable one: its optimistic cold-start re-tries
// every arm in each unseen state, so a broken arm keeps polluting the
// cache forever unless it is masked (the DQN's function approximation
// generalizes the avoidance across states on its own).
func degradationRun(t *testing.T, mode faults.Mode, masked bool) (sim.Result, int, bool) {
	t.Helper()
	w, err := trace.Lookup("433.lbm")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.GenerateSeeded(40000, w.Seed)
	cfg := core.DefaultConfig()
	cfg.Batch = 64
	if masked {
		cfg = faultMaskConfig(cfg)
	}
	pfs := FourPrefetchers()
	pfs[0] = faults.Wrap(pfs[0], faults.Config{Mode: mode, Seed: 97})
	ctrl := core.NewTabularController(cfg, pfs)
	res, err := sim.NewRunner(sim.DefaultConfig()).Run(tr, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return res, ctrl.MaskedArms(), ctrl.ArmMasked(0)
}

// TestMaskingImprovesFaultedEnsemble is the graceful-degradation
// acceptance test: with the dominant arm broken, the masked ensemble
// must beat the unmasked one on accuracy for the fault classes that
// actively pollute (stuck, noisy) and never be worse for silent (a
// silent arm issues nothing, so masking has nothing to cut).
func TestMaskingImprovesFaultedEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulator runs skipped in -short mode")
	}
	for _, tc := range []struct {
		mode   faults.Mode
		strict bool
	}{
		{faults.Stuck, true},
		{faults.Noisy, true},
		{faults.Silent, false},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			maskedRes, maskedArms, faultedMasked := degradationRun(t, tc.mode, true)
			unmaskedRes, _, _ := degradationRun(t, tc.mode, false)
			if tc.strict {
				if !faultedMasked {
					t.Errorf("fault %s: expected the broken arm to be masked (%d arms masked)",
						tc.mode, maskedArms)
				}
				if maskedRes.Accuracy <= unmaskedRes.Accuracy {
					t.Errorf("fault %s: masked accuracy %.4f not above unmasked %.4f",
						tc.mode, maskedRes.Accuracy, unmaskedRes.Accuracy)
				}
			} else if maskedRes.Accuracy < unmaskedRes.Accuracy {
				t.Errorf("fault %s: masked accuracy %.4f below unmasked %.4f",
					tc.mode, maskedRes.Accuracy, unmaskedRes.Accuracy)
			}
			if maskedRes.IPC < unmaskedRes.IPC {
				t.Errorf("fault %s: masked IPC %.3f below unmasked %.3f",
					tc.mode, maskedRes.IPC, unmaskedRes.IPC)
			}
		})
	}
}

// TestMaskingDQNNeverWorse: the DQN already learns to avoid a broken
// arm through its Q-values, so masking buys it little — but it must not
// cost accuracy either.
func TestMaskingDQNNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulator runs skipped in -short mode")
	}
	w, err := trace.Lookup("433.lbm")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.GenerateSeeded(40000, w.Seed)
	run := func(masked bool) sim.Result {
		cfg := core.DefaultConfig()
		cfg.Batch = 64
		if masked {
			cfg = faultMaskConfig(cfg)
		}
		pfs := FourPrefetchers()
		pfs[0] = faults.Wrap(pfs[0], faults.Config{Mode: faults.Noisy, Seed: 97})
		res, err := sim.NewRunner(sim.DefaultConfig()).Run(tr, core.NewController(cfg, pfs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	maskedRes, unmaskedRes := run(true), run(false)
	if maskedRes.Accuracy < unmaskedRes.Accuracy-0.02 {
		t.Errorf("masking cost the DQN accuracy: masked %.4f vs unmasked %.4f",
			maskedRes.Accuracy, unmaskedRes.Accuracy)
	}
}

// TestMaskingDisabledIsIdentical pins the compatibility contract: a
// zero MaskFloor must leave results bit-identical to a controller
// without the masking subsystem in the loop.
func TestMaskingDisabledIsIdentical(t *testing.T) {
	w, err := trace.Lookup("471.omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.GenerateSeeded(12000, w.Seed)
	run := func(cfg core.Config) sim.Result {
		res, err := sim.NewRunner(sim.DefaultConfig()).Run(tr, core.NewController(cfg, FourPrefetchers()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cfg := core.DefaultConfig()
	cfg.Batch = 64
	a := run(cfg)
	b := run(cfg) // same config twice: determinism guard
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunSafeRecoversPanic(t *testing.T) {
	Registry["test-panic"] = func(Options) error { panic("boom") }
	defer delete(Registry, "test-panic")

	r := RunSafe("test-panic", Options{Out: io.Discard}, 0)
	if !r.Panicked || r.Err == nil {
		t.Fatalf("want recovered panic, got %+v", r)
	}
}

func TestRunSafeDeadline(t *testing.T) {
	Registry["test-hang"] = func(Options) error { time.Sleep(5 * time.Second); return nil }
	defer delete(Registry, "test-hang")

	r := RunSafe("test-hang", Options{Out: io.Discard}, 50*time.Millisecond)
	if !r.TimedOut || r.Err == nil {
		t.Fatalf("want deadline exceeded, got %+v", r)
	}
}

// TestRunSuiteContinuesPastFailure: a panicking experiment must not
// abort the remaining suite entries.
func TestRunSuiteContinuesPastFailure(t *testing.T) {
	Registry["test-panic"] = func(Options) error { panic("boom") }
	defer delete(Registry, "test-panic")

	rs := RunSuite([]string{"test-panic", "config"}, Options{Out: io.Discard, Accesses: 1000}, 0)
	if len(rs) != 2 {
		t.Fatalf("want 2 results, got %d", len(rs))
	}
	if !rs[0].Panicked {
		t.Errorf("first experiment should have panicked: %+v", rs[0])
	}
	if rs[1].Failed() {
		t.Errorf("suite did not continue cleanly past the panic: %+v", rs[1])
	}
}

// TestFaultHookWiring: the sim.WithFaults plan must reach the
// prefetchers inside built sources.
func TestFaultHookWiring(t *testing.T) {
	wrapped := 0
	o := Options{
		Accesses: 1000,
		Batch:    64,
		Sim: []sim.Option{sim.WithFaults(func(p prefetch.Prefetcher) prefetch.Prefetcher {
			wrapped++
			return faults.Wrap(p, faults.Config{Mode: faults.Silent})
		})},
	}
	EvaluationSources().Build("resemble", o)
	if wrapped != 4 {
		t.Errorf("ensemble build wrapped %d prefetchers, want 4", wrapped)
	}
	wrapped = 0
	EvaluationSources().Build("bo", o)
	if wrapped != 1 {
		t.Errorf("solo build wrapped %d prefetchers, want 1", wrapped)
	}
}
