package experiments

import (
	"strconv"

	"resemble/internal/core"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// AblationRow is one configuration point of the design-choice study.
type AblationRow struct {
	Study string
	Label string
	IPC   float64
	Gain  float64
	Acc   float64
	Cov   float64
}

// Ablations sweeps the design choices Section IV motivates — reward
// window W, replay capacity, hidden width, hash bits, ε decay, target
// interval, ensemble width — each on the phase-hybrid workload. The
// same sweeps are exposed as benchmarks in ablation_bench_test.go.
func Ablations(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	o.printf("== Ablations: design-choice sensitivity on 602.gcc ==\n")
	o.printf("%-10s %-10s %8s %8s %8s\n", "study", "config", "dIPC", "acc", "cov")

	w := trace.MustLookup("602.gcc")
	tr := w.GenerateSeeded(o.Accesses, w.Seed+o.Seed)
	simCfg := sim.DefaultConfig()
	base := o.run(simCfg, tr, nil)

	run := func(study, label string, mutate func(*core.Config), pfs []prefetch.Prefetcher) AblationRow {
		cfg := o.controllerConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		if pfs == nil {
			pfs = FourPrefetchers()
		}
		r := o.run(simCfg, tr, core.NewController(cfg, pfs))
		row := AblationRow{
			Study: study, Label: label,
			IPC: r.IPC, Gain: r.IPCImprovement(base), Acc: r.Accuracy, Cov: r.Coverage,
		}
		o.printf("%-10s %-10s %+7.1f%% %7.1f%% %7.1f%%\n",
			row.Study, row.Label, 100*row.Gain, 100*row.Acc, 100*row.Cov)
		return row
	}

	var out []AblationRow
	for _, wnd := range []int{64, 256, 1024} {
		wnd := wnd
		out = append(out, run("window", strconv.Itoa(wnd), func(c *core.Config) { c.Window = wnd }, nil))
	}
	for _, n := range []int{500, 2000, 8000} {
		n := n
		out = append(out, run("replay", strconv.Itoa(n), func(c *core.Config) { c.ReplayN = n }, nil))
	}
	for _, h := range []int{25, 100, 400} {
		h := h
		out = append(out, run("hidden", strconv.Itoa(h), func(c *core.Config) { c.Hidden = h }, nil))
	}
	for _, b := range []uint{8, 16, 32} {
		b := b
		out = append(out, run("hashbits", strconv.Itoa(int(b)), func(c *core.Config) { c.HashBits = b }, nil))
	}
	for _, d := range []float64{20, 80, 640} {
		d := d
		out = append(out, run("epsdecay", strconv.Itoa(int(d)), func(c *core.Config) { c.EpsDecay = d }, nil))
	}
	for _, it := range []int{5, 20, 200} {
		it := it
		out = append(out, run("targetIt", strconv.Itoa(it), func(c *core.Config) { c.TargetInterval = it }, nil))
	}
	out = append(out, run("width", "4pf", nil, FourPrefetchers()))
	out = append(out, run("width", "5pf", nil, FivePrefetchers()))
	return out, nil
}
