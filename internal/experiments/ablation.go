package experiments

import (
	"strconv"

	"resemble/internal/core"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// AblationRow is one configuration point of the design-choice study.
type AblationRow struct {
	Study string
	Label string
	IPC   float64
	Gain  float64
	Acc   float64
	Cov   float64
}

// Ablations sweeps the design choices Section IV motivates — reward
// window W, replay capacity, hidden width, hash bits, ε decay, target
// interval, ensemble width — each on the phase-hybrid workload. The
// same sweeps are exposed as benchmarks in ablation_bench_test.go.
func Ablations(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	type spec struct {
		study, label string
		mutate       func(*core.Config)
		pfs          func() []prefetch.Prefetcher
	}
	var specs []spec
	for _, wnd := range []int{64, 256, 1024} {
		wnd := wnd
		specs = append(specs, spec{"window", strconv.Itoa(wnd), func(c *core.Config) { c.Window = wnd }, nil})
	}
	for _, n := range []int{500, 2000, 8000} {
		n := n
		specs = append(specs, spec{"replay", strconv.Itoa(n), func(c *core.Config) { c.ReplayN = n }, nil})
	}
	for _, h := range []int{25, 100, 400} {
		h := h
		specs = append(specs, spec{"hidden", strconv.Itoa(h), func(c *core.Config) { c.Hidden = h }, nil})
	}
	for _, b := range []uint{8, 16, 32} {
		b := b
		specs = append(specs, spec{"hashbits", strconv.Itoa(int(b)), func(c *core.Config) { c.HashBits = b }, nil})
	}
	for _, d := range []float64{20, 80, 640} {
		d := d
		specs = append(specs, spec{"epsdecay", strconv.Itoa(int(d)), func(c *core.Config) { c.EpsDecay = d }, nil})
	}
	for _, it := range []int{5, 20, 200} {
		it := it
		specs = append(specs, spec{"targetIt", strconv.Itoa(it), func(c *core.Config) { c.TargetInterval = it }, nil})
	}
	specs = append(specs,
		spec{"width", "4pf", nil, FourPrefetchers},
		spec{"width", "5pf", nil, FivePrefetchers})

	w := trace.MustLookup("602.gcc")
	simCfg := sim.DefaultConfig()
	// Task 0 is the no-prefetch baseline; tasks 1..len(specs) follow the
	// serial sweep order.
	results := make([]sim.Result, 1+len(specs))
	err := o.forEach(len(results), func(i int, o Options) {
		tr := o.traceFor(w)
		if i == 0 {
			results[0] = o.run(simCfg, tr, nil)
			return
		}
		s := specs[i-1]
		cfg := o.controllerConfig()
		if s.mutate != nil {
			s.mutate(&cfg)
		}
		build := s.pfs
		if build == nil {
			build = FourPrefetchers
		}
		results[i] = o.run(simCfg, tr, core.NewController(cfg, build()))
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Ablations: design-choice sensitivity on 602.gcc ==\n")
	o.printf("%-10s %-10s %8s %8s %8s\n", "study", "config", "dIPC", "acc", "cov")
	base := results[0]
	var out []AblationRow
	for i, s := range specs {
		r := results[1+i]
		row := AblationRow{
			Study: s.study, Label: s.label,
			IPC: r.IPC, Gain: r.IPCImprovement(base), Acc: r.Accuracy, Cov: r.Coverage,
		}
		out = append(out, row)
		o.printf("%-10s %-10s %+7.1f%% %7.1f%% %7.1f%%\n",
			row.Study, row.Label, 100*row.Gain, 100*row.Acc, 100*row.Cov)
	}
	return out, nil
}
