package experiments

import (
	"resemble/internal/metrics"
	"resemble/internal/trace"
)

// EnsembleResult aggregates Figures 8–10 for one prefetch source.
type EnsembleResult struct {
	Source string
	// Per-workload rows in workload-name order.
	Runs []WorkloadRun
	// Averages over all workloads (accuracy/coverage arithmetic means,
	// matching the paper's headline numbers; IPC improvement is the
	// mean relative gain).
	AvgAccuracy  float64
	AvgCoverage  float64
	AvgIPCGain   float64
	GeoMeanIPCxB float64 // geometric mean of IPC ratios (pf/baseline)
}

// Fig8to10 runs the full evaluation sweep (paper Figures 8, 9, 10):
// prefetch accuracy, coverage and IPC improvement of the individual
// prefetchers, SBP(E), ReSemble and ReSemble-T over every workload.
func Fig8to10(o Options) ([]EnsembleResult, error) {
	o = o.withDefaults()
	set := EvaluationSources()
	runs, err := runMatrix(o, trace.EvaluationWorkloads(), set)
	if err != nil {
		return nil, err
	}
	grouped := bySource(runs, set.Names)

	var out []EnsembleResult
	for _, name := range set.Names {
		rs := grouped[name]
		er := EnsembleResult{Source: name, Runs: rs}
		var accs, covs, gains, ratios []float64
		for _, r := range rs {
			accs = append(accs, r.Result.Accuracy)
			covs = append(covs, r.Result.Coverage)
			gains = append(gains, r.IPCImprovement())
			if r.Baseline.IPC > 0 {
				ratios = append(ratios, r.Result.IPC/r.Baseline.IPC)
			}
		}
		er.AvgAccuracy = metrics.Mean(accs)
		er.AvgCoverage = metrics.Mean(covs)
		er.AvgIPCGain = metrics.Mean(gains)
		er.GeoMeanIPCxB = metrics.GeoMean(ratios)
		out = append(out, er)
	}

	// Render: per-workload table then the Fig 8/9/10 averages.
	o.printf("== Fig 8-10: accuracy / coverage / IPC improvement ==\n")
	o.printf("%-18s", "workload")
	for _, n := range set.Names {
		o.printf(" %11s", n)
	}
	o.printf("\n")
	if len(out) > 0 {
		for i := range out[0].Runs {
			w := out[0].Runs[i].Workload
			o.printf("%-18s", w)
			for _, er := range out {
				r := er.Runs[i]
				o.printf(" %4.0f/%2.0f/%+3.0f", 100*r.Result.Accuracy, 100*r.Result.Coverage, 100*r.IPCImprovement())
			}
			o.printf("\n")
		}
	}
	o.printf("%-18s\n", "(cells: acc%/cov%/dIPC%)")
	o.printf("\nFig 8 (avg accuracy):   ")
	for _, er := range out {
		o.printf(" %s=%.1f%%", er.Source, 100*er.AvgAccuracy)
	}
	o.printf("\nFig 9 (avg coverage):   ")
	for _, er := range out {
		o.printf(" %s=%.1f%%", er.Source, 100*er.AvgCoverage)
	}
	o.printf("\nFig 10 (avg IPC gain):  ")
	for _, er := range out {
		o.printf(" %s=%+.1f%%", er.Source, 100*er.AvgIPCGain)
	}
	o.printf("\nFig 10 (geomean IPC ratio):")
	for _, er := range out {
		o.printf(" %s=%.3f", er.Source, er.GeoMeanIPCxB)
	}
	o.printf("\n")
	return out, nil
}
