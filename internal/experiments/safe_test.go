package experiments

import (
	"strings"
	"testing"
	"time"
)

// registerTestExperiment installs a synthetic experiment for the
// test's lifetime.
func registerTestExperiment(t *testing.T, id string, run func(Options) error) {
	t.Helper()
	if _, clash := Registry[id]; clash {
		t.Fatalf("test experiment id %q collides with a real experiment", id)
	}
	Registry[id] = run
	t.Cleanup(func() { delete(Registry, id) })
}

// TestRunSafePartialProgress: when the deadline cuts an experiment
// short, the SafeResult reports how many of its simulation runs had
// completed instead of a bare timeout.
func TestRunSafePartialProgress(t *testing.T) {
	const total = 40
	registerTestExperiment(t, "safe-test-partial", func(o Options) error {
		return o.forEach(total, func(int, Options) {
			time.Sleep(10 * time.Millisecond)
		})
	})
	r := RunSafe("safe-test-partial", Options{Jobs: 1}, 60*time.Millisecond)
	if !r.TimedOut {
		t.Fatalf("experiment did not time out (err %v, %d/%d runs)", r.Err, r.RunsDone, r.RunsTotal)
	}
	if r.RunsTotal != total {
		t.Fatalf("RunsTotal = %d, want %d", r.RunsTotal, total)
	}
	if r.RunsDone <= 0 || r.RunsDone >= total {
		t.Fatalf("RunsDone = %d, want partial progress in (0,%d)", r.RunsDone, total)
	}
	summary := r.ProgressSummary()
	if !strings.Contains(summary, "runs done") || !strings.Contains(summary, "remaining") {
		t.Fatalf("ProgressSummary = %q, want completed/remaining counts", summary)
	}
}

// TestRunSafeCompleteCounts: a clean run accounts for every simulation.
func TestRunSafeCompleteCounts(t *testing.T) {
	registerTestExperiment(t, "safe-test-complete", func(o Options) error {
		return o.forEach(5, func(int, Options) {})
	})
	r := RunSafe("safe-test-complete", Options{Jobs: 1}, time.Minute)
	if r.Failed() || r.TimedOut {
		t.Fatalf("clean run failed: %+v", r)
	}
	if r.RunsDone != 5 || r.RunsTotal != 5 {
		t.Fatalf("counts = %d/%d, want 5/5", r.RunsDone, r.RunsTotal)
	}
}

// TestRunSafeSharedProgressDelta: with a caller-supplied Progress that
// already carries counts from earlier experiments, RunSafe reports
// only this experiment's delta.
func TestRunSafeSharedProgressDelta(t *testing.T) {
	p := NewProgress(nil)
	p.add(7)
	for i := 0; i < 7; i++ {
		p.tick()
	}
	registerTestExperiment(t, "safe-test-delta", func(o Options) error {
		return o.forEach(3, func(int, Options) {})
	})
	r := RunSafe("safe-test-delta", Options{Jobs: 1, Progress: p}, time.Minute)
	if r.RunsDone != 3 || r.RunsTotal != 3 {
		t.Fatalf("delta counts = %d/%d, want 3/3 (shared tracker leaked in)", r.RunsDone, r.RunsTotal)
	}
}

// TestProgressNilWriter: a silent tracker counts without rendering and
// never dereferences its writer.
func TestProgressNilWriter(t *testing.T) {
	p := NewProgress(nil)
	p.add(4)
	p.tick()
	p.tick()
	p.Finish()
	if done, tot := p.Counts(); done != 2 || tot != 4 {
		t.Fatalf("Counts = %d/%d, want 2/4", done, tot)
	}
	var nilP *Progress
	if done, tot := nilP.Counts(); done != 0 || tot != 0 {
		t.Fatalf("nil Counts = %d/%d, want 0/0", done, tot)
	}
}

// TestSafeResultProgressSummaryEmpty: no counted runs, no summary —
// the caller falls back to the plain error line.
func TestSafeResultProgressSummaryEmpty(t *testing.T) {
	if s := (SafeResult{}).ProgressSummary(); s != "" {
		t.Fatalf("ProgressSummary = %q, want empty", s)
	}
}
