package experiments

import (
	"resemble/internal/core"
	"resemble/internal/ensemble/sbp"
	"resemble/internal/multicore"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// MulticoreResult summarizes the multi-core extension study (the
// paper's stated future work): a 4-core mix with one workload per
// pattern class, comparing no prefetching, per-core SBP(E), and
// per-core ReSemble controllers on the shared LLC.
type MulticoreResult struct {
	Mix []string
	// Weighted speedups over the no-prefetch baseline.
	SBPSpeedup      float64
	ResembleSpeedup float64
	// Per-core ReSemble IPC improvements.
	PerCoreGain []float64
}

// multicoreMix is the 4-core workload mix: spatial, temporal, hybrid
// and irregular.
func multicoreMix() []string {
	return []string{"433.lbm", "471.omnetpp", "602.gcc", "gap.bfs"}
}

// Multicore runs the multi-core extension experiment.
func Multicore(o Options) (MulticoreResult, error) {
	o = o.withDefaults()
	mix := multicoreMix()
	res := MulticoreResult{Mix: mix}
	mcfg := multicore.DefaultConfig()

	build := func(o Options, mk func() sim.Source) []multicore.Core {
		cores := make([]multicore.Core, len(mix))
		for i, name := range mix {
			cores[i] = multicore.Core{Trace: o.traceFor(trace.MustLookup(name))}
			if mk != nil {
				cores[i].Source = mk()
			}
		}
		return cores
	}

	// The three system configurations are independent simulations; run
	// them through the pool (cores within one configuration share an LLC
	// and stay sequential inside multicore.Run).
	makers := []func(o Options) func() sim.Source{
		func(Options) func() sim.Source { return nil },
		func(Options) func() sim.Source {
			return func() sim.Source { return sbp.New(sbp.Config{}, FourPrefetchers()) }
		},
		func(o Options) func() sim.Source {
			return func() sim.Source { return core.NewController(o.controllerConfig(), FourPrefetchers()) }
		},
	}
	outs := make([]multicore.Result, len(makers))
	errs := make([]error, len(makers))
	if err := o.forEach(len(makers), func(i int, o Options) {
		outs[i], errs[i] = multicore.Run(mcfg, build(o, makers[i](o)))
	}); err != nil {
		return res, err
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	base, withSBP, withRes := outs[0], outs[1], outs[2]

	res.SBPSpeedup = withSBP.WeightedSpeedup(base)
	res.ResembleSpeedup = withRes.WeightedSpeedup(base)
	for i := range withRes.PerCore {
		b := base.PerCore[i].Result.IPC
		var gain float64
		if b > 0 {
			gain = (withRes.PerCore[i].Result.IPC - b) / b
		}
		res.PerCoreGain = append(res.PerCoreGain, gain)
	}

	o.printf("== Multicore extension: 4 cores, shared LLC (future work, Section VIII) ==\n")
	o.printf("mix: %v\n", mix)
	o.printf("%-24s %8s\n", "configuration", "WS")
	o.printf("%-24s %8.3f\n", "per-core SBP(E)", res.SBPSpeedup)
	o.printf("%-24s %8.3f\n", "per-core ReSemble", res.ResembleSpeedup)
	o.printf("per-core ReSemble dIPC:")
	for i, g := range res.PerCoreGain {
		o.printf(" %s=%+.1f%%", mix[i], 100*g)
	}
	o.printf("\n")
	return res, nil
}
