package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resemble/internal/faults"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// goldenRun executes one experiment with telemetry into a temp
// directory and returns the rendered output plus the telemetry file
// contents, so two job levels can be compared byte for byte.
func goldenRun(t *testing.T, jobs int, run func(Options) error) (rendered, windows, events string) {
	t.Helper()
	dir := t.TempDir()
	tel, err := telemetry.New(telemetry.Config{Dir: dir, TraceSample: 16})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := Options{
		Accesses: 6000,
		Batch:    64,
		Out:      &out,
		Jobs:     jobs,
		Sim:      []sim.Option{sim.WithTelemetry(tel)},
		Traces:   trace.NewCache(0),
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return out.String(), read("windows.jsonl"), read("trace.jsonl")
}

// TestPoolDeterminism is the golden contract of the parallel engine:
// the rendered results and the merged telemetry streams (window
// snapshots and the sampled event trace) must be byte-identical
// between a serial run (-jobs 1) and a pooled one (-jobs 8).
func TestPoolDeterminism(t *testing.T) {
	experimentsUnderTest := map[string]func(Options) error{
		"fig1c": func(o Options) error { _, err := Fig1c(o); return err },
	}
	if !testing.Short() {
		// The fault matrix adds RL controllers and fault injection to
		// the determinism surface.
		experimentsUnderTest["faults"] = func(o Options) error { _, err := FaultMatrix(o); return err }
	}
	for name, run := range experimentsUnderTest {
		t.Run(name, func(t *testing.T) {
			serialOut, serialWin, serialTrace := goldenRun(t, 1, run)
			poolOut, poolWin, poolTrace := goldenRun(t, 8, run)
			if serialOut != poolOut {
				t.Errorf("rendered output diverged between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- jobs 8 ---\n%s", serialOut, poolOut)
			}
			if serialWin != poolWin {
				t.Errorf("windows.jsonl diverged (%d vs %d bytes)", len(serialWin), len(poolWin))
			}
			if serialTrace != poolTrace {
				t.Errorf("trace.jsonl diverged (%d vs %d bytes)", len(serialTrace), len(poolTrace))
			}
			if serialOut == "" || serialWin == "" || serialTrace == "" {
				t.Error("golden run produced empty artifacts; the comparison is vacuous")
			}
		})
	}
}

// TestPoolWithFaultInjection drives the pooled matrix path with a
// fault-injection plan and telemetry at high concurrency — the -race
// gate in scripts/check.sh runs this to shake out data races between
// workers, the trace cache and child-collector merging.
func TestPoolWithFaultInjection(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true, TraceSample: 16})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := Options{
		Accesses: 3000,
		Batch:    64,
		Out:      &out,
		Jobs:     8,
		Sim: []sim.Option{
			sim.WithTelemetry(tel),
			sim.WithFaults(func(p prefetch.Prefetcher) prefetch.Prefetcher {
				return faults.Wrap(p, faults.Config{Mode: faults.Silent, Seed: 7})
			}),
		},
		Traces:   trace.NewCache(0),
		Progress: NewProgress(&bytes.Buffer{}),
	}
	runs, err := runMatrix(o.withDefaults(), trace.MotivationWorkloads(), EvaluationSources())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("matrix produced no runs")
	}
	for _, r := range runs {
		if r.Result.LLCAccesses == 0 {
			t.Errorf("%s/%s: empty result", r.Workload, r.Source)
		}
	}
	if len(tel.Windows()) == 0 {
		t.Error("telemetry collected no windows from the pooled matrix")
	}
}

// TestPoolPanicIsolation: a panicking task must not take down its
// siblings silently — the pool drains, then re-raises the first panic
// with its task index.
func TestPoolPanicIsolation(t *testing.T) {
	o := Options{Out: nil, Jobs: 4}.withDefaults()
	var completed atomic.Int32
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("pool swallowed the task panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "pool task 2/") {
			t.Errorf("panic lost its task attribution: %v", v)
		}
	}()
	o.forEach(8, func(i int, _ Options) {
		if i == 2 {
			panic("boom")
		}
		completed.Add(1)
	})
}

// TestPoolDeadline: an expired Options deadline stops dispatch and
// surfaces errDeadline (which RunSafe maps to TimedOut).
func TestPoolDeadline(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		o := Options{Jobs: jobs}.withDefaults()
		o.deadline = time.Now().Add(-time.Second)
		ran := 0
		err := o.forEach(4, func(int, Options) { ran++ })
		if err == nil {
			t.Fatalf("jobs=%d: expired deadline not reported", jobs)
		}
		if ran != 0 {
			t.Errorf("jobs=%d: %d tasks dispatched after the deadline", jobs, ran)
		}
	}
}

// TestPoolChildCollectors: with jobs > 1 every task must see its own
// collector (isolation), and all runs must land in the parent manifest
// after the merge.
func TestPoolChildCollectors(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{KeepWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Jobs: 4, Sim: []sim.Option{sim.WithTelemetry(tel)}}.withDefaults()
	seen := make([]*telemetry.Collector, 8)
	o.forEach(8, func(i int, to Options) {
		seen[i] = to.telemetry()
	})
	for i, c := range seen {
		if c == nil || c == tel {
			t.Fatalf("task %d did not get an isolated child collector", i)
		}
		for j := 0; j < i; j++ {
			if seen[j] == c {
				t.Fatalf("tasks %d and %d share a collector", j, i)
			}
		}
	}
}

// TestProgress: the tracker is nil-safe and renders a final count.
func TestProgress(t *testing.T) {
	var p *Progress
	p.add(3)
	p.tick()
	p.Finish() // nil: all no-ops

	var buf bytes.Buffer
	p = NewProgress(&buf)
	p.add(2)
	p.tick()
	p.tick()
	p.Finish()
	if !strings.Contains(buf.String(), "runs 2/2") {
		t.Errorf("progress line missing final count: %q", buf.String())
	}
}

// BenchmarkMatrixPool exercises the pooled evaluation path end to end
// (trace cache, worker pool, result reassembly); scripts/check.sh runs
// it with -benchtime=1x as a smoke test.
func BenchmarkMatrixPool(b *testing.B) {
	o := Options{Accesses: 2000, Batch: 64, Traces: trace.NewCache(0)}.withDefaults()
	workloads := trace.MotivationWorkloads()
	for i := 0; i < b.N; i++ {
		if _, err := runMatrix(o, workloads, EvaluationSources()); err != nil {
			b.Fatal(err)
		}
	}
}
