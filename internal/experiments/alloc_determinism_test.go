package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// allocAttributionRun executes Fig1c with allocation attribution on at
// the given job level and returns (a) the deterministic projection of
// the merged per-phase attribution — phase names and visit counts,
// marshalled — and (b) the windows stream with the nondeterministic
// byte/object values stripped.
func allocAttributionRun(t *testing.T, jobs int) (phases []byte, windows string) {
	t.Helper()
	tel, err := telemetry.New(telemetry.Config{Dir: t.TempDir(), AllocAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := Options{
		Accesses: 4000,
		Batch:    64,
		Out:      &out,
		Jobs:     jobs,
		Sim:      []sim.Option{sim.WithTelemetry(tel)},
		Traces:   trace.NewCache(0),
	}
	if _, err := Fig1c(o); err != nil {
		t.Fatal(err)
	}

	type phaseCount struct {
		Phase string `json:"phase"`
		Count uint64 `json:"count"`
	}
	var proj []phaseCount
	for _, pa := range tel.PhaseAllocs() {
		if pa.AllocObjects == 0 && pa.AllocBytes != 0 {
			t.Errorf("phase %s: bytes without objects", pa.Phase)
		}
		proj = append(proj, phaseCount{pa.Phase, pa.Count})
	}
	enc, err := json.Marshal(proj)
	if err != nil {
		t.Fatal(err)
	}

	// Strip the process-global counters from the window stream; the
	// remaining fields must survive the merge untouched.
	var kept []string
	dec := json.NewDecoder(strings.NewReader(windowsJSON(t, tel)))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		delete(m, "alloc_bytes")
		delete(m, "alloc_objects")
		line, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, string(line))
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	return enc, strings.Join(kept, "\n")
}

func windowsJSON(t *testing.T, tel *telemetry.Collector) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, w := range tel.Windows() {
		if err := enc.Encode(w); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestAllocAttributionPoolDeterminism pins the merge contract for the
// attribution layer: with AllocAttribution enabled, a serial run and a
// pooled run produce byte-identical phase-name/visit-count projections
// and byte-identical windows once the process-global byte/object
// values (legitimately nondeterministic under concurrency) are
// stripped.
func TestAllocAttributionPoolDeterminism(t *testing.T) {
	serialPhases, serialWindows := allocAttributionRun(t, 1)
	pooledPhases, pooledWindows := allocAttributionRun(t, 8)

	if !bytes.Equal(serialPhases, pooledPhases) {
		t.Errorf("phase attribution diverges between jobs=1 and jobs=8:\n serial: %s\n pooled: %s",
			serialPhases, pooledPhases)
	}
	if len(serialPhases) == 0 || string(serialPhases) == "null" {
		t.Fatal("attribution-enabled run recorded no phases")
	}
	for _, want := range []string{"sim.run", "sim.simulate", "window.commit"} {
		if !strings.Contains(string(serialPhases), want) {
			t.Errorf("phase %q missing from attribution: %s", want, serialPhases)
		}
	}
	if serialWindows != pooledWindows {
		t.Error("deterministic window fields diverge between jobs=1 and jobs=8 with attribution enabled")
	}
}
