package experiments

import (
	"resemble/internal/core"
	"resemble/internal/metrics"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// rewardWindow is the paper's reward aggregation window (rewards are
// summed per 1K LLC accesses).
const rewardWindow = 1000

// ModelVariant identifies one controller configuration from the
// learning-performance study (Table VI, Figures 6–7).
type ModelVariant struct {
	Name  string // "mlp", "tab4", "tab8", with optional "+pc"
	Tab   bool
	Bits  uint
	UsePC bool
}

// LearningVariants returns the six configurations of Table VI.
func LearningVariants() []ModelVariant {
	return []ModelVariant{
		{Name: "tab4", Tab: true, Bits: 4},
		{Name: "tab8", Tab: true, Bits: 8},
		{Name: "mlp"},
		{Name: "tab4+pc", Tab: true, Bits: 4, UsePC: true},
		{Name: "tab8+pc", Tab: true, Bits: 8, UsePC: true},
		{Name: "mlp+pc", UsePC: true},
	}
}

// seriesController is the common surface of both controller variants.
type seriesController interface {
	sim.Source
	RewardSeries() []float64
	ActionSeries() []int8
	ActionNames() []string
}

// buildVariant instantiates a controller for a model variant.
func buildVariant(o Options, v ModelVariant) seriesController {
	cfg := o.controllerConfig()
	cfg.UsePC = v.UsePC
	if v.Tab {
		cfg.TableHashBits = v.Bits
		return core.NewTabularController(cfg, FourPrefetchers())
	}
	return core.NewController(cfg, FourPrefetchers())
}

// runVariant simulates a controller variant on one workload and returns
// the controller (holding its reward/action series) plus the result.
func runVariant(o Options, w trace.Workload, v ModelVariant) (seriesController, sim.Result) {
	tr := o.traceFor(w)
	ctrl := buildVariant(o, v)
	res := o.run(sim.DefaultConfig(), tr, ctrl)
	return ctrl, res
}

// Table6Row is one (variant, suite) average-reward cell.
type Table6Row struct {
	Variant string
	Suite   string
	// AvgReward is the mean reward sum per 1K-access window, averaged
	// over the suite's workloads.
	AvgReward float64
}

// Table6 reproduces the paper's Table VI: average rewards of 1K-access
// windows for the six model variants over the SPEC06, SPEC17 and GAP
// suites.
func Table6(o Options) ([]Table6Row, error) {
	o = o.withDefaults()
	suites := []string{"SPEC06", "SPEC17", "GAP"}
	variants := LearningVariants()
	type cell struct {
		v ModelVariant
		w trace.Workload
	}
	var tasks []cell
	for _, v := range variants {
		for _, suite := range suites {
			for _, w := range trace.SuiteWorkloads(suite) {
				tasks = append(tasks, cell{v: v, w: w})
			}
		}
	}
	vals := make([]float64, len(tasks))
	err := o.forEach(len(tasks), func(i int, o Options) {
		ctrl, _ := runVariant(o, tasks[i].w, tasks[i].v)
		sums := metrics.WindowSums(ctrl.RewardSeries(), rewardWindow)
		vals[i] = metrics.Mean(sums)
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Table VI: average rewards of 1K-access windows ==\n")
	o.printf("%-10s", "model")
	for _, s := range suites {
		o.printf(" %10s", s)
	}
	o.printf("\n")
	var out []Table6Row
	i := 0
	for _, v := range variants {
		o.printf("%-10s", v.Name)
		for _, suite := range suites {
			var perWorkload []float64
			for range trace.SuiteWorkloads(suite) {
				perWorkload = append(perWorkload, vals[i])
				i++
			}
			avg := metrics.Mean(perWorkload)
			out = append(out, Table6Row{Variant: v.Name, Suite: suite, AvgReward: avg})
			o.printf(" %10.2f", avg)
		}
		o.printf("\n")
	}
	return out, nil
}

// LearningCurve is one (workload, variant) reward trajectory.
type LearningCurve struct {
	Workload string
	Variant  string
	// WindowRewards is the reward sum per 1K-access window, smoothed by
	// 10 as in the paper's Figure 6.
	WindowRewards []float64
}

// Fig6 reproduces the case-study learning curves (paper Figure 6): the
// per-window rewards of the MLP and tabular variants (with and without
// PC) on the four case-study applications.
func Fig6(o Options) ([]LearningCurve, error) {
	o = o.withDefaults()
	variants := LearningVariants()
	workloads := trace.CaseStudyWorkloads()
	out := make([]LearningCurve, len(workloads)*len(variants))
	err := o.forEach(len(out), func(i int, o Options) {
		w, v := workloads[i/len(variants)], variants[i%len(variants)]
		ctrl, _ := runVariant(o, w, v)
		sums := metrics.WindowSums(ctrl.RewardSeries(), rewardWindow)
		out[i] = LearningCurve{Workload: w.Name, Variant: v.Name, WindowRewards: metrics.Smooth(sums, 10)}
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Fig 6: learning curves (reward per 1K window, smoothing 10) ==\n")
	for _, c := range out {
		sm := c.WindowRewards
		o.printf("%-15s %-8s", c.Workload, c.Variant)
		step := len(sm) / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(sm); i += step {
			o.printf(" %7.1f", sm[i])
		}
		o.printf("  (final %.1f)\n", sm[len(sm)-1])
	}
	return out, nil
}

// ActionWindow is the per-window action distribution of a controller.
type ActionWindow struct {
	Window int
	Share  map[string]float64
}

// ActionStudy is one (workload, variant) action trajectory.
type ActionStudy struct {
	Workload string
	Variant  string
	Windows  []ActionWindow
	// SwitchRate is the fraction of consecutive windows whose dominant
	// action differs — the paper's Figure 7 highlights the MLP's more
	// frequent prefetcher switches.
	SwitchRate float64
}

// Fig7 reproduces the action case study (paper Figure 7): the selection
// shares of the best MLP and tabular models per 1K-access window.
func Fig7(o Options) ([]ActionStudy, error) {
	o = o.withDefaults()
	variants := []ModelVariant{{Name: "mlp"}, {Name: "tab8", Tab: true, Bits: 8}}
	workloads := trace.CaseStudyWorkloads()
	out := make([]ActionStudy, len(workloads)*len(variants))
	err := o.forEach(len(out), func(i int, o Options) {
		w, v := workloads[i/len(variants)], variants[i%len(variants)]
		ctrl, _ := runVariant(o, w, v)
		out[i] = actionStudy(w.Name, v.Name, ctrl)
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Fig 7: action shares per 1K window (mlp and tab8) ==\n")
	for _, study := range out {
		o.printf("%-15s %-5s switchRate=%.2f dominant:", study.Workload, study.Variant, study.SwitchRate)
		for i := 0; i < len(study.Windows); i += maxInt(1, len(study.Windows)/8) {
			o.printf(" %s", dominant(study.Windows[i].Share))
		}
		o.printf("\n")
	}
	return out, nil
}

func actionStudy(workload, variant string, ctrl seriesController) ActionStudy {
	acts := ctrl.ActionSeries()
	names := ctrl.ActionNames()
	study := ActionStudy{Workload: workload, Variant: variant}
	prevDom := ""
	switches, windows := 0, 0
	for lo := 0; lo+rewardWindow <= len(acts); lo += rewardWindow {
		share := make(map[string]float64, len(names))
		for _, a := range acts[lo : lo+rewardWindow] {
			share[names[a]] += 1.0 / rewardWindow
		}
		study.Windows = append(study.Windows, ActionWindow{Window: lo / rewardWindow, Share: share})
		dom := dominant(share)
		if prevDom != "" && dom != prevDom {
			switches++
		}
		if prevDom != "" {
			windows++
		}
		prevDom = dom
	}
	if windows > 0 {
		study.SwitchRate = float64(switches) / float64(windows)
	}
	return study
}

func dominant(share map[string]float64) string {
	best, bestV := "", -1.0
	for name, v := range share {
		if v > bestV || (v == bestV && name < best) {
			best, bestV = name, v
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
