package experiments

import (
	"resemble/internal/core"
	"resemble/internal/faults"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// FaultRow is one fault class's comparison: the ensemble with
// degradation masking on, the ensemble without it, and the faulted
// prefetcher running solo.
type FaultRow struct {
	Mode        faults.Mode
	Masked      sim.Result
	Unmasked    sim.Result
	SoloFaulted sim.Result
	MaskedArms  int      // arms masked at the end of the masked run
	MaskedNames []string // names of the masked input prefetchers
}

// FaultMatrixResult holds the fault-matrix experiment outcome.
type FaultMatrixResult struct {
	Workload string
	Target   string // name of the faulted prefetcher
	Baseline sim.Result
	Healthy  sim.Result // un-faulted ensemble for reference
	BestSolo string
	BestRes  sim.Result // best healthy individual prefetcher
	Rows     []FaultRow
}

// faultMaskConfig returns the controller configuration with graceful
// degradation enabled at the evaluation operating point.
func faultMaskConfig(cfg core.Config) core.Config {
	cfg.MaskFloor = 0.2
	cfg.MaskWindow = 1024
	cfg.MaskBadWindows = 2
	cfg.MaskMinSamples = 16
	cfg.MaskReprobe = 16 * 1024
	return cfg
}

// FaultMatrix runs the graceful-degradation evaluation: the BO input
// prefetcher is broken with each deterministic fault class (stuck,
// silent, noisy) and the masked ensemble, the unmasked ensemble and
// the faulted prefetcher alone are compared against the healthy
// ensemble and the best healthy individual prefetcher.
//
// The ensemble under test is the tabular controller: its optimistic
// cold-start re-tries every arm in each unseen state, so without
// masking a broken arm pollutes the cache for the whole run — the
// worst case graceful degradation exists to fix. (The DQN's function
// approximation generalizes avoidance of a dead arm across states by
// itself; see TestMaskingDQNNeverWorse.)
func FaultMatrix(o Options) (*FaultMatrixResult, error) {
	o = o.withDefaults()
	const workload = "433.lbm"
	w, err := trace.Lookup(workload)
	if err != nil {
		return nil, err
	}
	tr := w.GenerateSeeded(o.Accesses, w.Seed+o.Seed)
	simCfg := sim.DefaultConfig()
	ensembleConfig := func() core.Config {
		cfg := o.controllerConfig()
		cfg.TableHashBits = 8
		return cfg
	}

	res := &FaultMatrixResult{Workload: workload}
	res.Baseline = o.run(simCfg, tr, nil)

	// Healthy references: the clean ensemble and the best solo.
	res.Healthy = o.run(simCfg, tr, core.NewTabularController(ensembleConfig(), FourPrefetchers()))
	for _, solo := range []string{"bo", "spp", "isb", "domino"} {
		r := o.run(simCfg, tr, EvaluationSources().Build(solo, Options{Accesses: o.Accesses, Batch: o.Batch, Seed: o.Seed}))
		if res.BestSolo == "" || r.IPC > res.BestRes.IPC {
			res.BestSolo, res.BestRes = solo, r
		}
	}

	// The faulted input: BO, the dominant spatial arm on this workload —
	// breaking the arm the ensemble leans on is the worst case for an
	// unmasked controller.
	breakBO := func(mode faults.Mode) []prefetch.Prefetcher {
		pfs := FourPrefetchers()
		res.Target = pfs[0].Name()
		pfs[0] = faults.Wrap(pfs[0], faults.Config{Mode: mode, Seed: 97 + o.Seed})
		return pfs
	}

	for _, mode := range []faults.Mode{faults.Stuck, faults.Silent, faults.Noisy} {
		var row FaultRow
		row.Mode = mode

		masked := core.NewTabularController(faultMaskConfig(ensembleConfig()), breakBO(mode))
		row.Masked = o.run(simCfg, tr, masked)
		row.MaskedArms = masked.MaskedArms()
		for i := range FourPrefetchers() {
			if masked.ArmMasked(i) {
				row.MaskedNames = append(row.MaskedNames, FourPrefetchers()[i].Name())
			}
		}

		row.Unmasked = o.run(simCfg, tr, core.NewTabularController(ensembleConfig(), breakBO(mode)))

		row.SoloFaulted = o.run(simCfg, tr, sim.FromPrefetcher(
			faults.Wrap(FourPrefetchers()[0], faults.Config{Mode: mode, Seed: 97 + o.Seed}), 2))

		res.Rows = append(res.Rows, row)
	}

	render := func(label string, r sim.Result) {
		o.printf("  %-14s acc=%5.1f%% cov=%5.1f%% MPKI=%6.2f IPC=%.3f (%+.1f%% vs base)\n",
			label, 100*r.Accuracy, 100*r.Coverage, r.MPKI, r.IPC, 100*r.IPCImprovement(res.Baseline))
	}
	o.printf("Fault matrix — %s, faulted input: %s\n", workload, res.Target)
	render("healthy", res.Healthy)
	render("best solo ("+res.BestSolo+")", res.BestRes)
	for _, row := range res.Rows {
		o.printf("fault=%s\n", row.Mode)
		render("masked", row.Masked)
		render("unmasked", row.Unmasked)
		render("solo faulted", row.SoloFaulted)
		o.printf("  arms masked at end of run: %d %v\n", row.MaskedArms, row.MaskedNames)
	}
	return res, nil
}
