package experiments

import (
	"resemble/internal/core"
	"resemble/internal/faults"
	"resemble/internal/prefetch"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// FaultRow is one fault class's comparison: the ensemble with
// degradation masking on, the ensemble without it, and the faulted
// prefetcher running solo.
type FaultRow struct {
	Mode        faults.Mode
	Masked      sim.Result
	Unmasked    sim.Result
	SoloFaulted sim.Result
	MaskedArms  int      // arms masked at the end of the masked run
	MaskedNames []string // names of the masked input prefetchers
}

// FaultMatrixResult holds the fault-matrix experiment outcome.
type FaultMatrixResult struct {
	Workload string
	Target   string // name of the faulted prefetcher
	Baseline sim.Result
	Healthy  sim.Result // un-faulted ensemble for reference
	BestSolo string
	BestRes  sim.Result // best healthy individual prefetcher
	Rows     []FaultRow
}

// faultMaskConfig returns the controller configuration with graceful
// degradation enabled at the evaluation operating point.
func faultMaskConfig(cfg core.Config) core.Config {
	cfg.MaskFloor = 0.2
	cfg.MaskWindow = 1024
	cfg.MaskBadWindows = 2
	cfg.MaskMinSamples = 16
	cfg.MaskReprobe = 16 * 1024
	return cfg
}

// FaultMatrix runs the graceful-degradation evaluation: the BO input
// prefetcher is broken with each deterministic fault class (stuck,
// silent, noisy) and the masked ensemble, the unmasked ensemble and
// the faulted prefetcher alone are compared against the healthy
// ensemble and the best healthy individual prefetcher.
//
// The ensemble under test is the tabular controller: its optimistic
// cold-start re-tries every arm in each unseen state, so without
// masking a broken arm pollutes the cache for the whole run — the
// worst case graceful degradation exists to fix. (The DQN's function
// approximation generalizes avoidance of a dead arm across states by
// itself; see TestMaskingDQNNeverWorse.)
func FaultMatrix(o Options) (*FaultMatrixResult, error) {
	o = o.withDefaults()
	const workload = "433.lbm"
	w, err := trace.Lookup(workload)
	if err != nil {
		return nil, err
	}
	simCfg := sim.DefaultConfig()
	ensembleConfig := func() core.Config {
		cfg := o.controllerConfig()
		cfg.TableHashBits = 8
		return cfg
	}

	// The faulted input: BO, the dominant spatial arm on this workload —
	// breaking the arm the ensemble leans on is the worst case for an
	// unmasked controller.
	res := &FaultMatrixResult{Workload: workload, Target: FourPrefetchers()[0].Name()}
	breakBO := func(mode faults.Mode) []prefetch.Prefetcher {
		pfs := FourPrefetchers()
		pfs[0] = faults.Wrap(pfs[0], faults.Config{Mode: mode, Seed: 97 + o.Seed})
		return pfs
	}

	// Task layout in serial execution order: baseline, healthy ensemble,
	// the four solos, then (masked, unmasked, solo-faulted) per mode.
	solos := []string{"bo", "spp", "isb", "domino"}
	modes := []faults.Mode{faults.Stuck, faults.Silent, faults.Noisy}
	modeBase := 2 + len(solos)
	results := make([]sim.Result, modeBase+3*len(modes))
	maskedCtrls := make([]*core.TabularController, len(modes))
	err = o.forEach(len(results), func(i int, o Options) {
		tr := o.traceFor(w)
		switch {
		case i == 0:
			results[i] = o.run(simCfg, tr, nil)
		case i == 1:
			results[i] = o.run(simCfg, tr, core.NewTabularController(ensembleConfig(), FourPrefetchers()))
		case i < modeBase:
			// Solos run un-faulted on purpose: they are the healthy
			// reference points, so the experiment's fault options must
			// not wrap them.
			src := EvaluationSources().Build(solos[i-2], Options{Accesses: o.Accesses, Batch: o.Batch, Seed: o.Seed})
			results[i] = o.run(simCfg, tr, src)
		default:
			mode := modes[(i-modeBase)/3]
			switch (i - modeBase) % 3 {
			case 0:
				masked := core.NewTabularController(faultMaskConfig(ensembleConfig()), breakBO(mode))
				maskedCtrls[(i-modeBase)/3] = masked
				results[i] = o.run(simCfg, tr, masked)
			case 1:
				results[i] = o.run(simCfg, tr, core.NewTabularController(ensembleConfig(), breakBO(mode)))
			case 2:
				results[i] = o.run(simCfg, tr, sim.FromPrefetcher(
					faults.Wrap(FourPrefetchers()[0], faults.Config{Mode: mode, Seed: 97 + o.Seed}), 2))
			}
		}
	})
	if err != nil {
		return nil, err
	}

	res.Baseline = results[0]
	res.Healthy = results[1]
	for si, solo := range solos {
		r := results[2+si]
		if res.BestSolo == "" || r.IPC > res.BestRes.IPC {
			res.BestSolo, res.BestRes = solo, r
		}
	}
	for mi, mode := range modes {
		row := FaultRow{
			Mode:        mode,
			Masked:      results[modeBase+3*mi],
			Unmasked:    results[modeBase+3*mi+1],
			SoloFaulted: results[modeBase+3*mi+2],
		}
		if masked := maskedCtrls[mi]; masked != nil {
			row.MaskedArms = masked.MaskedArms()
			for i := range FourPrefetchers() {
				if masked.ArmMasked(i) {
					row.MaskedNames = append(row.MaskedNames, FourPrefetchers()[i].Name())
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}

	render := func(label string, r sim.Result) {
		o.printf("  %-14s acc=%5.1f%% cov=%5.1f%% MPKI=%6.2f IPC=%.3f (%+.1f%% vs base)\n",
			label, 100*r.Accuracy, 100*r.Coverage, r.MPKI, r.IPC, 100*r.IPCImprovement(res.Baseline))
	}
	o.printf("Fault matrix — %s, faulted input: %s\n", workload, res.Target)
	render("healthy", res.Healthy)
	render("best solo ("+res.BestSolo+")", res.BestRes)
	for _, row := range res.Rows {
		o.printf("fault=%s\n", row.Mode)
		render("masked", row.Masked)
		render("unmasked", row.Unmasked)
		render("solo faulted", row.SoloFaulted)
		o.printf("  arms masked at end of run: %d %v\n", row.MaskedArms, row.MaskedNames)
	}
	return res, nil
}
