package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"resemble/internal/sim"
	"resemble/internal/telemetry"
)

// The parallel experiment engine. Every experiment decomposes into a
// flat list of independent simulation tasks (one (workload, source)
// run each) executed through forEach; rendering happens afterwards
// from the collected slots, in the original serial order. Determinism
// contract: the task list is built in the exact order the serial code
// executed its runs, every task gets full isolation (its own
// simulator, controller and — when telemetry is on — child collector),
// and children are merged back in task order. Results and telemetry
// streams are therefore byte-identical at every -jobs level; the
// golden tests in pool_test.go pin this.

// errDeadline marks a pool that stopped because the Options deadline
// (set by RunSafe) passed before all tasks were dispatched.
var errDeadline = errors.New("experiments: deadline exceeded")

// jobs resolves the worker count.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.NumCPU()
}

// expired returns errDeadline (wrapped) once the deadline has passed.
func (o Options) expired() error {
	if o.deadline.IsZero() || time.Now().Before(o.deadline) {
		return nil
	}
	return fmt.Errorf("%w (per-worker stop at %s)", errDeadline, o.deadline.Format(time.TimeOnly))
}

// forTask rebinds the task's Runner to its per-task span track and,
// when ch is non-nil, to an isolated child collector. Keying the span
// track by task index — not by (workload, source), which sweeps may
// repeat — gives every task slot its own deterministic ordinal space,
// so span trees are identical at every -jobs level.
func (o Options) forTask(i int, ch *telemetry.Collector) Options {
	opts := []sim.Option{sim.WithSpanTrack(fmt.Sprintf("task:%d", i))}
	if ch != nil {
		opts = append(opts, sim.WithTelemetry(ch))
	}
	o.runner = o.simRunner().With(opts...)
	return o
}

// forEach runs fn(i) for every index in [0,n) on the experiment's
// worker pool. Each invocation receives an Options whose telemetry —
// when enabled — is an isolated child collector, merged back into the
// suite collector in index order after all tasks finish, so the
// aggregate streams match a serial execution. Jobs<=1 runs inline on
// the parent collector (the serial reference path). A panicking task
// does not abort its siblings; the first panic (lowest index) is
// re-raised after the pool drains so RunSafe isolation keeps working.
// Returns errDeadline when the Options deadline cut the pool short.
func (o Options) forEach(n int, fn func(i int, o Options)) error {
	if n <= 0 {
		return nil
	}
	o.Progress.add(n)
	jobs := o.jobs()
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := o.expired(); err != nil {
				return err
			}
			fn(i, o.forTask(i, nil))
			o.Progress.tick()
		}
		return nil
	}

	parent := o.telemetry()
	children := make([]*telemetry.Collector, n)
	panics := make([]any, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if parent != nil {
					children[i] = parent.Child()
				}
				to := o.forTask(i, children[i])
				func() {
					defer func() {
						if v := recover(); v != nil {
							panics[i] = v
						}
					}()
					fn(i, to)
				}()
				o.Progress.tick()
			}
		}()
	}
	var stopped error
	for i := 0; i < n; i++ {
		if err := o.expired(); err != nil {
			stopped = err
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, ch := range children {
		if ch != nil {
			parent.Merge(ch)
		}
	}
	for i, v := range panics {
		if v != nil {
			panic(fmt.Sprintf("experiments: pool task %d/%d panicked: %v", i, n, v))
		}
	}
	return stopped
}

// syncWriter serializes writes to the underlying writer so result
// lines from concurrent printers never interleave mid-line.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Progress renders a live suite-level progress line: simulations
// completed / total with an ETA extrapolated from the observed rate.
// One Progress value is shared across every experiment of a suite (set
// it once on the Options), so the totals span the whole sweep. All
// methods are nil-safe and concurrency-safe. A nil writer makes the
// tracker silent — counting still works, nothing renders — which is
// how RunSafe accounts for partial progress without owning a terminal.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
}

// NewProgress builds a progress tracker writing to w (typically
// os.Stderr, keeping result streams clean). A nil w counts silently.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()}
}

// Counts returns the completed and expected simulation-run totals
// accumulated so far (zeros for a nil tracker).
func (p *Progress) Counts() (done, total int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.total
}

// add grows the expected task total (called by each pool section).
func (p *Progress) add(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.render()
	p.mu.Unlock()
}

// tick records one completed task and refreshes the line.
func (p *Progress) tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.render()
	p.mu.Unlock()
}

// Finish terminates the progress line (call once, after the suite).
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return
	}
	fmt.Fprintf(p.w, "\rruns %d/%d done in %s%-12s\n",
		p.done, p.total, time.Since(p.start).Round(time.Second), "")
}

// render repaints the line; the caller holds p.mu.
func (p *Progress) render() {
	if p.w == nil {
		return
	}
	eta := "--"
	if p.done > 0 && p.done < p.total {
		rem := time.Duration(float64(time.Since(p.start)) / float64(p.done) * float64(p.total-p.done))
		eta = rem.Round(time.Second).String()
	}
	pct := 0
	if p.total > 0 {
		pct = 100 * p.done / p.total
	}
	fmt.Fprintf(p.w, "\rruns %d/%d (%d%%) eta %-10s", p.done, p.total, pct, eta)
}
