package experiments

import (
	"errors"
	"fmt"
	"time"
)

// SafeResult records one fault-isolated experiment execution.
type SafeResult struct {
	ID       string
	Err      error
	Panicked bool
	Panic    any
	TimedOut bool
	Duration time.Duration

	// RunsDone and RunsTotal are the simulation runs this experiment
	// completed and expected (from its Progress accounting), so a
	// timed-out experiment reports its salvageable partial progress
	// instead of a bare failure. Both are zero when the experiment
	// never reached its worker pool.
	RunsDone  int
	RunsTotal int
}

// Failed reports whether the experiment did not complete cleanly.
func (r SafeResult) Failed() bool { return r.Err != nil }

// ProgressSummary renders the completed/remaining run counts, e.g.
// "18/42 runs done (24 remaining)"; empty when nothing was counted.
func (r SafeResult) ProgressSummary() string {
	if r.RunsTotal == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d runs done (%d remaining)",
		r.RunsDone, r.RunsTotal, r.RunsTotal-r.RunsDone)
}

// RunSafe executes one registered experiment inside a panic-recovering,
// deadline-bounded wrapper, so a crash or hang in one experiment cannot
// take down a whole suite. timeout <= 0 disables the deadline.
//
// The deadline is enforced per worker: it travels into the experiment's
// Options, the worker pool stops dispatching tasks once it passes, and
// the experiment returns errDeadline — so a timed-out experiment winds
// down its goroutines instead of simulating on unobserved. The
// select-based timeout remains as a backstop for code that hangs
// outside the pool (in that case the goroutine is abandoned — Go
// cannot kill it — and the suite moves on; acceptable for a salvage
// path whose alternative is losing the entire run).
func RunSafe(id string, o Options, timeout time.Duration) SafeResult {
	run, ok := Registry[id]
	if !ok {
		return SafeResult{ID: id, Err: fmt.Errorf("experiments: unknown experiment %q", id)}
	}
	start := time.Now()
	if timeout > 0 {
		o.deadline = start.Add(timeout)
	}
	// A silent Progress tracker (nil writer) keeps run accounting alive
	// even when the caller did not ask for a progress line, so partial
	// progress survives into the SafeResult on timeout.
	if o.Progress == nil {
		o.Progress = NewProgress(nil)
	}
	done0, total0 := o.Progress.Counts()
	counts := func(r *SafeResult) {
		d, t := o.Progress.Counts()
		r.RunsDone, r.RunsTotal = d-done0, t-total0
	}
	done := make(chan SafeResult, 1)
	go func() {
		r := SafeResult{ID: id}
		defer func() {
			if v := recover(); v != nil {
				r.Panicked = true
				r.Panic = v
				r.Err = fmt.Errorf("experiments: %s panicked: %v", id, v)
			}
			if errors.Is(r.Err, errDeadline) {
				r.TimedOut = true
			}
			counts(&r)
			r.Duration = time.Since(start)
			done <- r
		}()
		r.Err = run(o)
	}()
	if timeout <= 0 {
		return <-done
	}
	select {
	case r := <-done:
		return r
	case <-time.After(timeout + 2*time.Second):
		r := SafeResult{
			ID: id, TimedOut: true, Duration: time.Since(start),
			Err: fmt.Errorf("experiments: %s exceeded deadline %s", id, timeout),
		}
		counts(&r)
		return r
	}
}

// RunSuite runs every listed experiment via RunSafe, continuing past
// failures, and returns one result per id in order.
func RunSuite(ids []string, o Options, timeout time.Duration) []SafeResult {
	out := make([]SafeResult, 0, len(ids))
	for _, id := range ids {
		out = append(out, RunSafe(id, o, timeout))
	}
	return out
}
