// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections V and VI) on the synthetic workload
// suite. Each experiment has a Run function returning structured
// results plus a renderer that prints the same rows/series the paper
// reports; cmd/experiments exposes them by id ("fig8", "table6", ...).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"resemble/internal/core"
	"resemble/internal/ensemble/sbp"
	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/domino"
	"resemble/internal/prefetch/isb"
	"resemble/internal/prefetch/spp"
	"resemble/internal/prefetch/stride"
	"resemble/internal/prefetch/voyager"
	"resemble/internal/sim"
	"resemble/internal/telemetry"
	"resemble/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Accesses is the trace length per workload. The paper simulates
	// 100M instructions (~1–2M LLC accesses after SimPoint sampling);
	// the default here is 60000 accesses (~2.4M instructions) per
	// workload, which reaches steady state on the synthetic suite.
	Accesses int
	// Batch overrides the controller training batch. The paper's Table
	// III value is 256; the default here is 64, which keeps the full
	// sweep tractable in software simulation with no measurable change
	// in outcomes (see EXPERIMENTS.md).
	Batch int
	// Seed offsets workload and controller seeds for repeated runs.
	Seed int64
	// FixedFrac, when non-zero, serves DQN action selection from a
	// 16-bit fixed-point snapshot with this many fractional bits
	// (core.Config.FixedFrac); 0 keeps float64 serving.
	FixedFrac uint
	// Out receives the rendered tables/series; nil discards output. It
	// is wrapped in a mutex-guarded writer, so rendering stays intact
	// even if an experiment prints from concurrent workers.
	Out io.Writer
	// Jobs bounds the number of concurrent simulations of the worker
	// pool; 0 defaults to runtime.NumCPU() and 1 forces the serial
	// path. Results and telemetry streams are byte-identical at every
	// job count (see DESIGN.md, "Parallel experiment engine").
	Jobs int
	// Sim holds the sim.Runner options applied to every simulation of
	// the experiment — telemetry (sim.WithTelemetry), fault injection
	// (sim.WithFaults), and any future cross-cutting concern. This is
	// the same configuration surface direct simulator users have; the
	// harness adds nothing on top.
	Sim []sim.Option
	// Progress, when non-nil, receives a live suite-level progress line
	// (runs completed / total / ETA) as pool tasks finish.
	Progress *Progress
	// Traces overrides the trace cache; nil uses the process-wide
	// shared cache (trace.Shared), so every workload trace is generated
	// once and shared read-only across sources, experiments and
	// workers.
	Traces *trace.Cache

	// runner is the resolved sim.Runner prototype (built from Sim by
	// withDefaults); per-run variants derive from it via WithConfig and
	// With.
	runner *sim.Runner
	// deadline, when set (RunSafe), makes the worker pool stop pulling
	// tasks once passed, so a timed-out experiment winds down instead
	// of running to completion in an abandoned goroutine.
	deadline time.Time
}

func (o Options) withDefaults() Options {
	if o.Accesses == 0 {
		o.Accesses = 60000
	}
	if o.Batch == 0 {
		o.Batch = 64
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if _, ok := o.Out.(*syncWriter); !ok {
		o.Out = &syncWriter{w: o.Out}
	}
	if o.runner == nil {
		o.runner = sim.NewRunner(sim.DefaultConfig(), o.Sim...)
	}
	return o
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// simRunner returns the resolved Runner prototype (tolerating Options
// values that skipped withDefaults, e.g. hand-built test fixtures).
func (o Options) simRunner() *sim.Runner {
	if o.runner == nil {
		o.runner = sim.NewRunner(sim.DefaultConfig(), o.Sim...)
	}
	return o.runner
}

// telemetry returns the collector installed via sim.WithTelemetry (nil
// when instrumentation is off).
func (o Options) telemetry() *telemetry.Collector {
	return o.simRunner().Telemetry()
}

// run simulates src (nil for the no-prefetch baseline) over tr through
// the experiment's Runner, so every simulation shares the experiment's
// telemetry and fault configuration.
func (o Options) run(cfg sim.Config, tr *trace.Trace, src sim.Source) sim.Result {
	res, _ := o.simRunner().WithConfig(cfg).Run(tr, src)
	return res
}

// traceFor returns the workload's trace at the experiment's length and
// seed offset, served from the trace cache.
func (o Options) traceFor(w trace.Workload) *trace.Trace {
	c := o.Traces
	if c == nil {
		c = trace.Shared()
	}
	return c.Get(w, o.Accesses, w.Seed+o.Seed)
}

// wrap applies the sim.WithFaults hook to one prefetcher.
func (o Options) wrap(p prefetch.Prefetcher) prefetch.Prefetcher {
	return o.simRunner().Wrap(p)
}

// wrapAll applies the sim.WithFaults hook to a prefetcher set.
func (o Options) wrapAll(pfs []prefetch.Prefetcher) []prefetch.Prefetcher {
	return o.simRunner().WrapAll(pfs)
}

// controllerConfig returns the framework configuration for experiments.
func (o Options) controllerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Batch = o.Batch
	cfg.Seed = 1 + o.Seed
	cfg.FixedFrac = o.FixedFrac
	return cfg
}

// FourPrefetchers builds the paper's Table II input set: BO, SPP, ISB
// and Domino at their default configurations.
func FourPrefetchers() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		bo.New(bo.Config{}),
		spp.New(spp.Config{}),
		isb.New(isb.Config{}),
		domino.New(domino.Config{}),
	}
}

// VoyagerPrefetchers builds the Section VI-B input set: Domino replaced
// by the LSTM-based Voyager stand-in.
func VoyagerPrefetchers() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		bo.New(bo.Config{}),
		spp.New(spp.Config{}),
		isb.New(isb.Config{}),
		voyager.New(voyager.Config{}),
	}
}

// FivePrefetchers adds a classic stride prefetcher as a fifth input
// (used by the variable-width ablation).
func FivePrefetchers() []prefetch.Prefetcher {
	return append(FourPrefetchers(), stride.New(stride.Config{}))
}

// SourceSet names the prefetch sources compared in Figures 8–10.
type SourceSet struct {
	Names []string
	Build func(name string, o Options) sim.Source
}

// EvaluationSources returns the Fig 8–10 comparison set: the four
// individual prefetchers, SBP(E), ReSemble, and ReSemble-T (8-bit).
func EvaluationSources() SourceSet {
	return SourceSet{
		Names: []string{"bo", "spp", "isb", "domino", "sbp-e", "resemble", "resemble-t"},
		Build: func(name string, o Options) sim.Source {
			switch name {
			case "bo":
				return sim.FromPrefetcher(o.wrap(bo.New(bo.Config{})), 2)
			case "spp":
				return sim.FromPrefetcher(o.wrap(spp.New(spp.Config{})), 2)
			case "isb":
				return sim.FromPrefetcher(o.wrap(isb.New(isb.Config{})), 2)
			case "domino":
				return sim.FromPrefetcher(o.wrap(domino.New(domino.Config{})), 2)
			case "sbp-e":
				return sbp.New(sbp.Config{}, o.wrapAll(FourPrefetchers()))
			case "resemble":
				return core.NewController(o.controllerConfig(), o.wrapAll(FourPrefetchers()))
			case "resemble-t":
				cfg := o.controllerConfig()
				cfg.TableHashBits = 8
				return core.NewTabularController(cfg, o.wrapAll(FourPrefetchers()))
			default:
				panic(fmt.Sprintf("experiments: unknown source %q", name))
			}
		},
	}
}

// WorkloadRun holds one (workload, source) simulation outcome together
// with its no-prefetch baseline.
type WorkloadRun struct {
	Workload string
	Source   string
	Result   sim.Result
	Baseline sim.Result
}

// IPCImprovement is the relative IPC gain over the baseline.
func (w WorkloadRun) IPCImprovement() float64 { return w.Result.IPCImprovement(w.Baseline) }

// runMatrix simulates every (workload, source) pair through the worker
// pool, reusing one baseline run per workload, and reassembles the
// results in deterministic matrix order (workload-major, baseline
// first, sources in set order — the serial execution order).
func runMatrix(o Options, workloads []trace.Workload, set SourceSet) ([]WorkloadRun, error) {
	simCfg := sim.DefaultConfig()
	type task struct {
		w      trace.Workload
		source string // "" runs the no-prefetch baseline
	}
	var tasks []task
	for _, w := range workloads {
		tasks = append(tasks, task{w: w})
		for _, name := range set.Names {
			tasks = append(tasks, task{w: w, source: name})
		}
	}
	results := make([]sim.Result, len(tasks))
	err := o.forEach(len(tasks), func(i int, o Options) {
		t := tasks[i]
		tr := o.traceFor(t.w)
		var src sim.Source
		if t.source != "" {
			src = set.Build(t.source, o)
		}
		results[i] = o.run(simCfg, tr, src)
	})
	if err != nil {
		return nil, err
	}
	var out []WorkloadRun
	i := 0
	for _, w := range workloads {
		base := results[i]
		i++
		for _, name := range set.Names {
			out = append(out, WorkloadRun{Workload: w.Name, Source: name, Result: results[i], Baseline: base})
			i++
		}
	}
	return out, nil
}

// bySource groups runs per source preserving set order.
func bySource(runs []WorkloadRun, names []string) map[string][]WorkloadRun {
	m := make(map[string][]WorkloadRun)
	for _, r := range runs {
		m[r.Source] = append(m[r.Source], r)
	}
	for _, rs := range m {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Workload < rs[j].Workload })
	}
	_ = names
	return m
}

// Registry maps experiment ids to their runners.
var Registry = map[string]func(Options) error{
	"fig1a":  func(o Options) error { _, err := Fig1a(o); return err },
	"fig1b":  func(o Options) error { _, err := Fig1b(o); return err },
	"fig1c":  func(o Options) error { _, err := Fig1c(o); return err },
	"table4": func(o Options) error { _, err := Table4(o); return err },
	"table6": func(o Options) error { _, err := Table6(o); return err },
	"fig6":   func(o Options) error { _, err := Fig6(o); return err },
	"fig7":   func(o Options) error { _, err := Fig7(o); return err },
	"fig8":   func(o Options) error { _, err := Fig8to10(o); return err },
	"fig9":   func(o Options) error { _, err := Fig8to10(o); return err },
	"fig10":  func(o Options) error { _, err := Fig8to10(o); return err },
	"table7": func(o Options) error { Table7(o); return nil },
	"fig11":  func(o Options) error { _, err := Fig11(o); return err },
	"table8": func(o Options) error { Table8(o); return nil },
	"fig12":  func(o Options) error { _, err := Fig12(o); return err },
	"config": func(o Options) error { PrintConfig(o); return nil },
	// Extensions beyond the paper's evaluation (Section VIII future work).
	"faults":    func(o Options) error { _, err := FaultMatrix(o); return err },
	"multicore": func(o Options) error { _, err := Multicore(o); return err },
	"budget":    func(o Options) error { _, err := BudgetSensitivity(o); return err },
	"taxonomy":  func(o Options) error { _, err := Taxonomy(o); return err },
	"ablation":  func(o Options) error { _, err := Ablations(o); return err },
}

// ExperimentIDs returns the registry keys in canonical order: the
// paper's artifacts first, then the extension studies.
func ExperimentIDs() []string {
	return []string{
		"fig1a", "fig1b", "fig1c", "config", "table4", "table6",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"table7", "fig11", "table8", "fig12",
		"faults", "multicore", "budget", "taxonomy", "ablation",
	}
}
