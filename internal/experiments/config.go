package experiments

import (
	"resemble/internal/core"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// PrintConfig renders the configuration tables (paper Tables II, III
// and V as instantiated by this reproduction, including the documented
// scaling).
func PrintConfig(o Options) {
	o = o.withDefaults()

	o.printf("== Table II: input prefetchers ==\n")
	for _, p := range FourPrefetchers() {
		kind := "temporal"
		if p.Spatial() {
			kind = "spatial"
		}
		o.printf("  %-8s %s\n", p.Name(), kind)
	}

	o.printf("\n== Table III: ReSemble framework configuration ==\n")
	cc := core.DefaultConfig()
	o.printf("  address bits            %d\n", 64)
	o.printf("  block offset            %d\n", 6)
	o.printf("  page offset             %d\n", 12)
	o.printf("  state dimension S       %d\n", len(FourPrefetchers()))
	o.printf("  action dimension A      %d\n", len(FourPrefetchers())+1)
	o.printf("  hash bits (MLP)         %d\n", cc.HashBits)
	o.printf("  replay memory R         %d\n", cc.ReplayN)
	o.printf("  prefetch window W       %d\n", cc.Window)
	o.printf("  batch size              %d (paper: 256; sweeps default to %d)\n", cc.Batch, o.Batch)
	o.printf("  eps start/end/decay     %.2f / %.3f / %.0f\n", cc.EpsStart, cc.EpsEnd, cc.EpsDecay)
	o.printf("  policy interval I_p     %d\n", cc.PolicyInterval)
	o.printf("  target interval I_t     %d\n", cc.TargetInterval)
	o.printf("  hidden width H          %d\n", cc.Hidden)
	o.printf("  gamma / lr              %.2f / %.3f\n", cc.Gamma, cc.LR)

	o.printf("\n== Table V: simulation parameters (scaled 1/64, see DESIGN.md) ==\n")
	sc := sim.DefaultConfig()
	for _, c := range []struct {
		name string
		cfg  any
	}{{"L1D", sc.L1D}, {"L2", sc.L2}, {"LLC", sc.LLC}} {
		_ = c
	}
	o.printf("  core                    %d-wide OoO, %d-entry ROB\n", sc.IssueWidth, sc.ROB)
	o.printf("  L1D                     %d sets x %d ways, %d-cycle\n", sc.L1D.Sets, sc.L1D.Ways, sc.L1D.Latency)
	o.printf("  L2                      %d sets x %d ways, %d-cycle\n", sc.L2.Sets, sc.L2.Ways, sc.L2.Latency)
	o.printf("  LLC                     %d sets x %d ways, %d-cycle, %d MSHRs\n", sc.LLC.Sets, sc.LLC.Ways, sc.LLC.Latency, sc.LLC.MSHRs)
	o.printf("  DRAM                    %d-cycle latency, %d-cycle request interval\n", sc.DRAMLatency, sc.DRAMInterval)
	o.printf("  warmup                  %.0f%% of accesses\n", 100*sc.WarmupFraction)

	o.printf("\n== Workload suite (synthetic stand-ins; see DESIGN.md) ==\n")
	for _, s := range trace.Suites() {
		o.printf("  %s:", s)
		for _, w := range trace.SuiteWorkloads(s) {
			o.printf(" %s(%s)", w.Name, w.Class)
		}
		o.printf("\n")
	}
}
