package experiments

import (
	"resemble/internal/core"
	"resemble/internal/metrics"
	"resemble/internal/prefetch/voyager"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// Fig12Row is one workload's outcome in the NN-prefetcher study.
type Fig12Row struct {
	Workload string
	// IPC improvement of: Voyager alone, the ReSemble ensemble with
	// Voyager as an input (Domino swapped out), and the Section V
	// ensemble without Voyager.
	VoyagerAlone    float64
	EnsembleVoyager float64
	EnsemblePlain   float64
}

// Fig12Result carries the per-case rows plus the geometric-mean
// summary the paper reports.
type Fig12Result struct {
	Rows []Fig12Row
	// Geomean IPC ratios converted back to improvements.
	GeoVoyagerAlone    float64
	GeoEnsembleVoyager float64
	GeoEnsemblePlain   float64
}

// fig12Workloads is the case set: spatial, temporal and hybrid
// representatives (the paper shows 433.milc and other cases plus the
// geometric mean).
func fig12Workloads() []trace.Workload {
	return []trace.Workload{
		trace.MustLookup("433.milc"),
		trace.MustLookup("471.omnetpp"),
		trace.MustLookup("429.mcf"),
		trace.MustLookup("602.gcc"),
	}
}

// Fig12 reproduces the Section VI-B experiment: ReSemble with the
// LSTM-based Voyager stand-in replacing Domino, compared against
// Voyager alone and the plain four-prefetcher ensemble.
func Fig12(o Options) (Fig12Result, error) {
	o = o.withDefaults()
	var res Fig12Result
	simCfg := sim.DefaultConfig()
	workloads := fig12Workloads()
	const per = 4 // baseline, voyager alone, ensemble+voyager, plain ensemble
	results := make([]sim.Result, len(workloads)*per)
	err := o.forEach(len(results), func(i int, o Options) {
		tr := o.traceFor(workloads[i/per])
		var src sim.Source
		switch i % per {
		case 1:
			src = sim.FromPrefetcher(voyager.New(voyager.Config{}), 2)
		case 2:
			src = core.NewController(o.controllerConfig(), VoyagerPrefetchers())
		case 3:
			src = core.NewController(o.controllerConfig(), FourPrefetchers())
		}
		results[i] = o.run(simCfg, tr, src)
	})
	if err != nil {
		return res, err
	}

	o.printf("== Fig 12: ReSemble with an NN (Voyager-like) input prefetcher ==\n")
	o.printf("%-15s %12s %12s %12s\n", "workload", "voyager", "resemble+V", "resemble")
	var rA, rV, rP []float64
	for wi, w := range workloads {
		base := results[wi*per]
		alone, withV, plain := results[wi*per+1], results[wi*per+2], results[wi*per+3]

		row := Fig12Row{
			Workload:        w.Name,
			VoyagerAlone:    alone.IPCImprovement(base),
			EnsembleVoyager: withV.IPCImprovement(base),
			EnsemblePlain:   plain.IPCImprovement(base),
		}
		res.Rows = append(res.Rows, row)
		if base.IPC > 0 {
			rA = append(rA, alone.IPC/base.IPC)
			rV = append(rV, withV.IPC/base.IPC)
			rP = append(rP, plain.IPC/base.IPC)
		}
		o.printf("%-15s %+11.1f%% %+11.1f%% %+11.1f%%\n",
			row.Workload, 100*row.VoyagerAlone, 100*row.EnsembleVoyager, 100*row.EnsemblePlain)
	}
	res.GeoVoyagerAlone = metrics.GeoMean(rA) - 1
	res.GeoEnsembleVoyager = metrics.GeoMean(rV) - 1
	res.GeoEnsemblePlain = metrics.GeoMean(rP) - 1
	o.printf("%-15s %+11.1f%% %+11.1f%% %+11.1f%%  (geometric mean)\n",
		"geomean", 100*res.GeoVoyagerAlone, 100*res.GeoEnsembleVoyager, 100*res.GeoEnsemblePlain)
	return res, nil
}
