package experiments

import (
	"math"

	"resemble/internal/metrics"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/isb"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// maxLag is the autocorrelation horizon of the global analysis (the
// paper's Figure 1 plots lags up to ~40).
const maxLag = 40

// perPCMaxLag is the horizon of the per-PC analysis; per-PC streams can
// have long cycles (a pointer chain repeats at its length), so Figure
// 1b's grouped analysis looks further out.
const perPCMaxLag = 1024

// ACResult is one workload's autocorrelation summary.
type ACResult struct {
	Workload string
	// AC is the global (Fig 1a) or mean per-PC (Fig 1b) autocorrelation
	// of the line-delta series.
	AC []float64
	// Significant lists the lags beyond the white-noise bound.
	Significant []int
	// MaxAbsAC is max_{lag>=1} |AC[lag]| — the headline periodicity
	// signal.
	MaxAbsAC float64
}

// clampDeltas bounds the delta magnitudes before autocorrelation:
// rare region-restart jumps are orders of magnitude larger than the
// pattern deltas and would otherwise own the entire variance, masking
// the periodic structure the analysis is after.
func clampDeltas(d []float64) []float64 {
	const bound = 256 // lines
	out := make([]float64, len(d))
	for i, v := range d {
		switch {
		case v > bound:
			v = bound
		case v < -bound:
			v = -bound
		}
		out[i] = v
	}
	return out
}

func summarizeAC(workload string, ac []float64, n int) ACResult {
	res := ACResult{Workload: workload, AC: ac, Significant: metrics.SignificantLags(ac, n)}
	for lag := 1; lag < len(ac); lag++ {
		if v := math.Abs(ac[lag]); v > res.MaxAbsAC {
			res.MaxAbsAC = v
		}
	}
	return res
}

// Fig1a computes the autocorrelation of each motivation workload's
// line-delta series (paper Figure 1a). Address sequences trend (region
// bases dominate), so periodicity is analyzed on the deltas.
func Fig1a(o Options) ([]ACResult, error) {
	o = o.withDefaults()
	o.printf("== Fig 1a: autocorrelation of memory traces (delta series) ==\n")
	var out []ACResult
	for _, w := range trace.MotivationWorkloads() {
		tr := o.traceFor(w)
		deltas := clampDeltas(tr.DeltaSeries())
		ac := metrics.Autocorrelation(deltas, maxLag)
		res := summarizeAC(w.Name, ac, len(deltas))
		out = append(out, res)
		o.printf("%-15s sigLags=%-3d maxAC=%.2f  ac[1..8]=", w.Name, len(res.Significant), res.MaxAbsAC)
		for lag := 1; lag <= 8; lag++ {
			o.printf(" %+.2f", ac[lag])
		}
		o.printf("\n")
	}
	return out, nil
}

// Fig1b computes the same analysis after grouping accesses by PC
// (paper Figure 1b): the autocorrelation of every PC's own delta
// subsequence, averaged weighted by subsequence length. The paper's
// observation is that PC grouping strengthens the temporal workloads'
// correlations (their per-PC streams are periodic) while the
// multi-stride spatial workload collapses to trivial constant deltas.
func Fig1b(o Options) ([]ACResult, error) {
	o = o.withDefaults()
	o.printf("== Fig 1b: autocorrelation grouped by PC (per-PC delta series) ==\n")
	var out []ACResult
	for _, w := range trace.MotivationWorkloads() {
		tr := o.traceFor(w)
		acc := make([]float64, perPCMaxLag+1)
		var weight float64
		var total int
		for _, g := range tr.PCGroups() {
			deltas := clampDeltas(g.DeltaSeries())
			if len(deltas) < 8 {
				continue
			}
			ac := metrics.Autocorrelation(deltas, perPCMaxLag)
			for i := range acc {
				acc[i] += ac[i] * float64(len(deltas))
			}
			weight += float64(len(deltas))
			total += len(deltas)
		}
		if weight > 0 {
			for i := range acc {
				acc[i] /= weight
			}
		}
		res := summarizeAC(w.Name, acc, total)
		out = append(out, res)
		o.printf("%-15s sigLags=%-3d maxAC=%.2f\n", w.Name, len(res.Significant), res.MaxAbsAC)
	}
	return out, nil
}

// Fig1cRow is one (workload, prefetcher) outcome of Figure 1c.
type Fig1cRow struct {
	Workload       string
	Prefetcher     string
	Accuracy       float64
	Coverage       float64
	MPKIReduction  float64 // fraction of baseline MPKI removed
	IPCImprovement float64
}

// Fig1c compares BO and ISB on the motivation workloads (paper Figure
// 1c: accuracy, coverage, MPKI reduction, IPC improvement).
func Fig1c(o Options) ([]Fig1cRow, error) {
	o = o.withDefaults()
	simCfg := sim.DefaultConfig()
	workloads := trace.MotivationWorkloads()
	pfs := []string{"bo", "isb"}
	per := 1 + len(pfs) // baseline + one run per prefetcher
	results := make([]sim.Result, len(workloads)*per)
	err := o.forEach(len(results), func(i int, o Options) {
		tr := o.traceFor(workloads[i/per])
		var src sim.Source
		switch i % per {
		case 1:
			src = sim.FromPrefetcher(bo.New(bo.Config{}), 2)
		case 2:
			src = sim.FromPrefetcher(isb.New(isb.Config{}), 2)
		}
		results[i] = o.run(simCfg, tr, src)
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Fig 1c: BO vs ISB on the motivation workloads ==\n")
	o.printf("%-15s %-6s %8s %8s %8s %8s\n", "workload", "pf", "acc", "cov", "dMPKI", "dIPC")
	var out []Fig1cRow
	for wi, w := range workloads {
		base := results[wi*per]
		for pi, pf := range pfs {
			r := results[wi*per+1+pi]
			row := Fig1cRow{
				Workload:       w.Name,
				Prefetcher:     pf,
				Accuracy:       r.Accuracy,
				Coverage:       r.Coverage,
				IPCImprovement: r.IPCImprovement(base),
			}
			if base.MPKI > 0 {
				row.MPKIReduction = (base.MPKI - r.MPKI) / base.MPKI
			}
			out = append(out, row)
			o.printf("%-15s %-6s %7.1f%% %7.1f%% %7.1f%% %+7.1f%%\n",
				row.Workload, row.Prefetcher, 100*row.Accuracy, 100*row.Coverage,
				100*row.MPKIReduction, 100*row.IPCImprovement)
		}
	}
	return out, nil
}
