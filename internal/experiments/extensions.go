package experiments

import (
	"resemble/internal/core"
	"resemble/internal/metrics"
	"resemble/internal/prefetch"
	"resemble/internal/prefetch/bo"
	"resemble/internal/prefetch/domino"
	"resemble/internal/prefetch/ghb"
	"resemble/internal/prefetch/isb"
	"resemble/internal/prefetch/spp"
	"resemble/internal/prefetch/stems"
	"resemble/internal/prefetch/stms"
	"resemble/internal/prefetch/stride"
	"resemble/internal/prefetch/vldp"
	"resemble/internal/prefetch/voyager"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// BudgetPoint is one budget-scale measurement of the ensemble.
type BudgetPoint struct {
	// Scale divides/multiplies the input prefetchers' table budgets
	// (0.25, 1, 4).
	Scale float64
	// AvgIPCGain is the mean ReSemble IPC improvement over the
	// motivation workloads at this budget.
	AvgIPCGain  float64
	AvgCoverage float64
}

// budgetPrefetchers builds the four input prefetchers with their
// metadata budgets scaled by s.
func budgetPrefetchers(s float64) []prefetch.Prefetcher {
	scale := func(base int) int {
		v := int(float64(base) * s)
		if v < 8 {
			v = 8
		}
		return v
	}
	return []prefetch.Prefetcher{
		bo.New(bo.Config{RRSize: scale(1024)}),
		spp.New(spp.Config{STSize: scale(256), PTSize: scale(512), FilterSize: scale(1024)}),
		isb.New(isb.Config{AMCSize: scale(1 << 15)}),
		domino.New(domino.Config{LogSize: scale(1 << 16), IndexSize: scale(1 << 15)}),
	}
}

// BudgetSensitivity studies the framework's sensitivity to the input
// prefetchers' hardware budgets — the paper's stated future work
// ("sensitivity to varying budgets", Section VIII). Table budgets are
// scaled from a quarter to four times the Table II configuration.
func BudgetSensitivity(o Options) ([]BudgetPoint, error) {
	o = o.withDefaults()
	simCfg := sim.DefaultConfig()
	scales := []float64{0.25, 1, 4}
	workloads := trace.MotivationWorkloads()
	per := 2 * len(workloads) // baseline + ensemble per workload
	results := make([]sim.Result, len(scales)*per)
	err := o.forEach(len(results), func(i int, o Options) {
		s, w := scales[i/per], workloads[(i%per)/2]
		var src sim.Source
		if i%2 == 1 {
			src = core.NewController(o.controllerConfig(), budgetPrefetchers(s))
		}
		results[i] = o.run(simCfg, o.traceFor(w), src)
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Budget sensitivity (future work): ReSemble vs input budgets ==\n")
	o.printf("%-8s %10s %10s\n", "scale", "dIPC", "coverage")
	var out []BudgetPoint
	for si, s := range scales {
		var gains, covs []float64
		for wi := range workloads {
			base := results[si*per+2*wi]
			r := results[si*per+2*wi+1]
			gains = append(gains, r.IPCImprovement(base))
			covs = append(covs, r.Coverage)
		}
		p := BudgetPoint{Scale: s, AvgIPCGain: metrics.Mean(gains), AvgCoverage: metrics.Mean(covs)}
		out = append(out, p)
		o.printf("%-8.2f %+9.1f%% %9.1f%%\n", p.Scale, 100*p.AvgIPCGain, 100*p.AvgCoverage)
	}
	return out, nil
}

// TaxonomyRow is one prefetcher's suite-wide result in the extended
// taxonomy comparison.
type TaxonomyRow struct {
	Prefetcher  string
	Class       string
	AvgAccuracy float64
	AvgCoverage float64
	AvgIPCGain  float64
}

// Taxonomy compares every implemented prefetcher (the paper's Table I
// taxonomy plus the NN prefetcher) head to head across the evaluation
// suite — an extension beyond the paper's four-input configuration.
func Taxonomy(o Options) ([]TaxonomyRow, error) {
	o = o.withDefaults()
	o.printf("== Extended taxonomy: all implemented prefetchers ==\n")
	o.printf("%-9s %-9s %8s %8s %8s\n", "pf", "class", "acc", "cov", "dIPC")
	type entry struct {
		name  string
		class string
		build func() sim.Source
	}
	entries := []entry{
		{"bo", "spatial", func() sim.Source { return sim.FromPrefetcher(bo.New(bo.Config{}), 4) }},
		{"spp", "spatial", func() sim.Source { return sim.FromPrefetcher(spp.New(spp.Config{}), 4) }},
		{"vldp", "spatial", func() sim.Source { return sim.FromPrefetcher(vldp.New(vldp.Config{}), 4) }},
		{"stride", "spatial", func() sim.Source { return sim.FromPrefetcher(stride.New(stride.Config{}), 4) }},
		{"ghb", "spatial", func() sim.Source { return sim.FromPrefetcher(ghb.New(ghb.Config{}), 4) }},
		{"isb", "temporal", func() sim.Source { return sim.FromPrefetcher(isb.New(isb.Config{}), 4) }},
		{"domino", "temporal", func() sim.Source { return sim.FromPrefetcher(domino.New(domino.Config{}), 4) }},
		{"stms", "temporal", func() sim.Source { return sim.FromPrefetcher(stms.New(stms.Config{}), 4) }},
		{"stems", "spa-temp", func() sim.Source { return sim.FromPrefetcher(stems.New(stems.Config{}), 4) }},
		{"voyager", "neural", func() sim.Source { return sim.FromPrefetcher(voyager.New(voyager.Config{}), 4) }},
	}
	// A representative cross-section keeps the LSTM runtime in check.
	workloads := []string{"433.lbm", "433.milc", "471.omnetpp", "429.mcf", "602.gcc"}
	simCfg := sim.DefaultConfig()
	per := 2 * len(workloads) // baseline + prefetcher per workload
	results := make([]sim.Result, len(entries)*per)
	err := o.forEach(len(results), func(i int, o Options) {
		e := entries[i/per]
		w := trace.MustLookup(workloads[(i%per)/2])
		var src sim.Source
		if i%2 == 1 {
			src = e.build()
		}
		results[i] = o.run(simCfg, o.traceFor(w), src)
	})
	if err != nil {
		return nil, err
	}

	var out []TaxonomyRow
	for ei, e := range entries {
		var accs, covs, gains []float64
		for wi := range workloads {
			base := results[ei*per+2*wi]
			r := results[ei*per+2*wi+1]
			accs = append(accs, r.Accuracy)
			covs = append(covs, r.Coverage)
			gains = append(gains, r.IPCImprovement(base))
		}
		row := TaxonomyRow{
			Prefetcher:  e.name,
			Class:       e.class,
			AvgAccuracy: metrics.Mean(accs),
			AvgCoverage: metrics.Mean(covs),
			AvgIPCGain:  metrics.Mean(gains),
		}
		out = append(out, row)
		o.printf("%-9s %-9s %7.1f%% %7.1f%% %+7.1f%%\n",
			row.Prefetcher, row.Class, 100*row.AvgAccuracy, 100*row.AvgCoverage, 100*row.AvgIPCGain)
	}
	return out, nil
}
