package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps experiment smoke tests fast.
func tinyOpts() Options {
	return Options{Accesses: 3000, Batch: 16}
}

func TestFig1aShape(t *testing.T) {
	res, err := Fig1a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("expected 4 motivation workloads, got %d", len(res))
	}
	byName := map[string]ACResult{}
	for _, r := range res {
		byName[r.Workload] = r
		if len(r.AC) != maxLag+1 {
			t.Errorf("%s: %d lags, want %d", r.Workload, len(r.AC), maxLag+1)
		}
		if r.AC[0] < 0.999 {
			t.Errorf("%s: ac[0] = %v, want 1", r.Workload, r.AC[0])
		}
	}
	// The paper's observation: the spatial workloads (milc, wrf) show
	// strong periodic structure; the pointer-chasing ones do not.
	milc, omnetpp := byName["433.milc"], byName["471.omnetpp"]
	if milc.MaxAbsAC <= omnetpp.MaxAbsAC {
		t.Errorf("milc periodicity (%.2f) should exceed omnetpp's (%.2f)",
			milc.MaxAbsAC, omnetpp.MaxAbsAC)
	}
	if wrf := byName["621.wrf"]; wrf.MaxAbsAC < 0.3 {
		t.Errorf("wrf delta signature should autocorrelate strongly, got %.2f", wrf.MaxAbsAC)
	}
}

func TestFig1bPCGroupingHelpsTemporal(t *testing.T) {
	global, err := Fig1a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Fig1b(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	find := func(rs []ACResult, name string) ACResult {
		for _, r := range rs {
			if r.Workload == name {
				return r
			}
		}
		t.Fatalf("workload %s missing", name)
		return ACResult{}
	}
	// The paper's Fig 1b observation: PC grouping strengthens the
	// autocorrelation of the PC-localized temporal workloads (their
	// per-PC streams are periodic pointer chains).
	for _, name := range []string{"471.omnetpp", "623.xalancbmk"} {
		g := find(global, name)
		p := find(grouped, name)
		if p.MaxAbsAC <= g.MaxAbsAC {
			t.Errorf("%s: PC grouping should strengthen periodicity (%.2f -> %.2f)",
				name, g.MaxAbsAC, p.MaxAbsAC)
		}
	}
	// And milc collapses to trivial constant per-PC deltas ("faster
	// decay" in the paper's words).
	if milc := find(grouped, "433.milc"); milc.MaxAbsAC > 0.5 {
		t.Errorf("milc per-PC deltas should be near-constant, AC %.2f", milc.MaxAbsAC)
	}
}

func TestFig1cAffinity(t *testing.T) {
	// ISB needs at least one full pass over the pointer-chase chains
	// (~7K lines) before it can replay them, so this test uses a longer
	// trace than the other smoke tests.
	rows, err := Fig1c(Options{Accesses: 20000, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 rows (4 workloads x 2 prefetchers), got %d", len(rows))
	}
	byKey := map[string]Fig1cRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Prefetcher] = r
	}
	if b, i := byKey["433.milc/bo"], byKey["433.milc/isb"]; b.Coverage <= i.Coverage {
		t.Errorf("BO should out-cover ISB on milc: %.3f vs %.3f", b.Coverage, i.Coverage)
	}
	if b, i := byKey["471.omnetpp/bo"], byKey["471.omnetpp/isb"]; i.Coverage <= b.Coverage {
		t.Errorf("ISB should out-cover BO on omnetpp: %.3f vs %.3f", i.Coverage, b.Coverage)
	}
}

func TestTable4Structure(t *testing.T) {
	res, err := Table4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 5 {
		t.Fatalf("expected 5 size rows (1 MLP + 2 direct + 2 token), got %d", len(res.Sizes))
	}
	if res.Sizes[0].Entries != 1005 {
		t.Errorf("MLP params = %v, want 1005", res.Sizes[0].Entries)
	}
	if res.MeasuredUniqueStates[4] <= 0 || res.MeasuredUniqueStates[8] <= 0 {
		t.Error("unique states not measured")
	}
	if res.MeasuredUniqueStates[4] > res.MeasuredUniqueStates[8] {
		t.Errorf("4-bit states (%d) exceed 8-bit states (%d)",
			res.MeasuredUniqueStates[4], res.MeasuredUniqueStates[8])
	}
}

func TestTable7Render(t *testing.T) {
	var buf bytes.Buffer
	f, p := Table7(Options{Out: &buf})
	if f.Total <= 0 || p.Total != 22 {
		t.Errorf("totals: formula %d, paper %d", f.Total, p.Total)
	}
	if !strings.Contains(buf.String(), "Table VII") {
		t.Error("missing render header")
	}
}

func TestTable8Render(t *testing.T) {
	var buf bytes.Buffer
	est := Table8(Options{Out: &buf})
	if est.MLPBytes <= 0 || est.ReplayBytes <= 0 {
		t.Errorf("estimates: %+v", est)
	}
	if !strings.Contains(buf.String(), "Table VIII") {
		t.Error("missing render header")
	}
}

func TestPrintConfig(t *testing.T) {
	var buf bytes.Buffer
	PrintConfig(Options{Out: &buf})
	out := buf.String()
	for _, want := range []string{"Table II", "Table III", "Table V", "SPEC06", "GAP"} {
		if !strings.Contains(out, want) {
			t.Errorf("config output missing %q", want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range ExperimentIDs() {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment id %q missing from registry", id)
		}
	}
	// Every paper artifact must have an id.
	for _, id := range []string{"fig1a", "fig1b", "fig1c", "table4", "table6",
		"fig6", "fig7", "fig8", "fig9", "fig10", "table7", "fig11", "table8", "fig12"} {
		found := false
		for _, have := range ExperimentIDs() {
			if have == id {
				found = true
			}
		}
		if !found {
			t.Errorf("paper artifact %q has no experiment id", id)
		}
	}
}

func TestSourceSetBuildsAll(t *testing.T) {
	set := EvaluationSources()
	for _, name := range set.Names {
		src := set.Build(name, tinyOpts())
		if src == nil {
			t.Errorf("source %q built nil", name)
		}
		if src.Name() == "" {
			t.Errorf("source %q has empty name", name)
		}
	}
}

func TestPrefetcherSets(t *testing.T) {
	if n := len(FourPrefetchers()); n != 4 {
		t.Errorf("FourPrefetchers = %d", n)
	}
	if n := len(VoyagerPrefetchers()); n != 4 {
		t.Errorf("VoyagerPrefetchers = %d", n)
	}
	if n := len(FivePrefetchers()); n != 5 {
		t.Errorf("FivePrefetchers = %d", n)
	}
	// The Voyager set must contain the LSTM prefetcher, not Domino.
	names := map[string]bool{}
	for _, p := range VoyagerPrefetchers() {
		names[p.Name()] = true
	}
	if !names["voyager"] || names["domino"] {
		t.Errorf("voyager set wrong: %v", names)
	}
}

func TestTable6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 18 controller simulations")
	}
	rows, err := Table6(Options{Accesses: 2500, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 variants x 3 suites
		t.Fatalf("expected 18 cells, got %d", len(rows))
	}
	for _, r := range rows {
		// Rewards are degree-aware (±1 per issued line, up to the sim's
		// MaxDegree of 4 lines per access), so a 1K window spans ±4000.
		if r.AvgReward < -4000*1.01 || r.AvgReward > 4000*1.01 {
			t.Errorf("%s/%s: reward %v outside [-4000,4000] per 1K window", r.Variant, r.Suite, r.AvgReward)
		}
	}
}

func TestMulticoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core sweeps")
	}
	res, err := Multicore(Options{Accesses: 6000, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mix) != 4 || len(res.PerCoreGain) != 4 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	if res.ResembleSpeedup <= 0 || res.SBPSpeedup <= 0 {
		t.Errorf("speedups not positive: %+v", res)
	}
}

func TestBudgetSensitivitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("budget sweeps")
	}
	pts, err := BudgetSensitivity(Options{Accesses: 5000, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, p := range pts {
		if p.AvgCoverage < 0 || p.AvgCoverage > 1 {
			t.Errorf("coverage %v out of range at scale %v", p.AvgCoverage, p.Scale)
		}
	}
}

func TestTaxonomySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every prefetcher")
	}
	rows, err := Taxonomy(Options{Accesses: 5000, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 prefetchers", len(rows))
	}
	classes := map[string]bool{}
	for _, r := range rows {
		classes[r.Class] = true
		if r.AvgAccuracy < 0 || r.AvgAccuracy > 1 {
			t.Errorf("%s accuracy %v out of range", r.Prefetcher, r.AvgAccuracy)
		}
	}
	for _, c := range []string{"spatial", "temporal", "spa-temp", "neural"} {
		if !classes[c] {
			t.Errorf("taxonomy missing class %s", c)
		}
	}
}

func TestFig11Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep")
	}
	pts, err := Fig11(Options{Accesses: 4000, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("expected 10 points, got %d", len(pts))
	}
	// At 40 cycles the low-TP controller must not beat high-TP.
	var hi40, lo40 Fig11Point
	for _, p := range pts {
		if p.Latency == 40 {
			if p.HighThroughput {
				hi40 = p
			} else {
				lo40 = p
			}
		}
	}
	if lo40.AvgCoverage > hi40.AvgCoverage+0.02 {
		t.Errorf("low TP coverage (%.3f) beat high TP (%.3f) at 40 cycles",
			lo40.AvgCoverage, hi40.AvgCoverage)
	}
}
