package experiments

import (
	"resemble/internal/core"
	"resemble/internal/metrics"
	"resemble/internal/sim"
	"resemble/internal/trace"
)

// Table4Result carries the Table IV model sizes, with the tokenized
// table rows based on unique-state counts measured on the live suite.
type Table4Result struct {
	Sizes []core.ModelSize
	// MeasuredUniqueStates maps hash bits to the unique states observed
	// across the evaluation workloads.
	MeasuredUniqueStates map[uint]int
}

// Table4 reproduces the paper's Table IV: MLP parameter count, direct
// Q-table sizes at 4- and 8-bit hashing, and tokenized Q-table sizes
// using unique-state counts measured on the synthetic suite.
func Table4(o Options) (Table4Result, error) {
	o = o.withDefaults()
	res := Table4Result{MeasuredUniqueStates: map[uint]int{}}
	// Measure unique states with short tabular runs over the suite.
	allBits := []uint{4, 8}
	workloads := trace.EvaluationWorkloads()
	counts := make([]int, len(allBits)*len(workloads))
	err := o.forEach(len(counts), func(i int, o Options) {
		bits, w := allBits[i/len(workloads)], workloads[i%len(workloads)]
		cfg := o.controllerConfig()
		cfg.TableHashBits = bits
		ctrl := core.NewTabularController(cfg, FourPrefetchers())
		o.Accesses /= 4 // short runs suffice for state counting
		tr := o.traceFor(w)
		o.run(sim.DefaultConfig(), tr, ctrl)
		counts[i] = ctrl.UniqueStates()
	})
	if err != nil {
		return res, err
	}
	for bi, bits := range allBits {
		total := 0
		for wi := range workloads {
			total += counts[bi*len(workloads)+wi]
		}
		res.MeasuredUniqueStates[bits] = total
	}
	const s, a, h = 4, 5, 100
	res.Sizes = core.ModelSizes(s, a, h, []uint{4, 8}, res.MeasuredUniqueStates)
	o.printf("== Table IV: model sizes ==\n")
	o.printf("%-16s %-22s %-10s %14s\n", "model", "expression", "config", "#param/entries")
	for _, ms := range res.Sizes {
		o.printf("%-16s %-22s %-10s %14.4g\n", ms.Model, ms.Expression, ms.Config, ms.Entries)
	}
	o.printf("(tokenized rows use unique states measured on this suite: B=4 -> %d, B=8 -> %d)\n",
		res.MeasuredUniqueStates[4], res.MeasuredUniqueStates[8])
	return res, nil
}

// Table7 prints the inference-latency decomposition: Equation 14's
// formula evaluation side by side with the paper's published Table VII.
func Table7(o Options) (formula, paper core.LatencyEstimate) {
	o = o.withDefaults()
	formula = core.EstimateLatency(64, 16, 4, 100, 5)
	paper = core.PaperTable7()
	o.printf("== Table VII: inference latency (cycles) ==\n")
	o.printf("%-22s %8s %8s\n", "phase", "Eq 14", "paper")
	rows := []struct {
		name string
		f, p int
	}{
		{"hash T_h", formula.HashCycles, paper.HashCycles},
		{"norm T_n", formula.NormCycles, paper.NormCycles},
		{"hidden MM T_mm_h", formula.HiddenMMCycles, paper.HiddenMMCycles},
		{"output MM T_mm_o", formula.OutputMMCycles, paper.OutputMMCycles},
		{"activations 2×T_av", formula.ActivationCycle, paper.ActivationCycle},
		{"action T_qv", formula.ActionCycles, paper.ActionCycles},
		{"total", formula.Total, paper.Total},
	}
	for _, r := range rows {
		o.printf("%-22s %8d %8d\n", r.name, r.f, r.p)
	}
	return formula, paper
}

// Table8 prints the storage-overhead estimate.
func Table8(o Options) core.StorageEstimate {
	o = o.withDefaults()
	est := core.EstimateStorage(4, 100, 5, 2000, 256)
	o.printf("== Table VIII: storage overhead ==\n")
	o.printf("MLP (2 networks, 16-bit fixed point, on-chip): %.1f KB\n", float64(est.MLPBytes)/1024)
	o.printf("Replay memory (2K transitions + 256-entry prefetch window, off-chip): %.1f KB\n",
		float64(est.ReplayBytes)/1024)
	return est
}

// Fig11Point is one latency-sweep measurement.
type Fig11Point struct {
	Latency        uint64
	HighThroughput bool
	AvgAccuracy    float64
	AvgCoverage    float64
	AvgIPCGain     float64
}

// fig11Workloads is the latency-sensitivity subset: one representative
// per pattern class, keeping the sweep tractable.
func fig11Workloads() []trace.Workload {
	return []trace.Workload{
		trace.MustLookup("433.lbm"),
		trace.MustLookup("471.omnetpp"),
		trace.MustLookup("602.gcc"),
		trace.MustLookup("621.wrf"),
	}
}

// Fig11 sweeps the controller inference latency from 0 to 40 cycles in
// high- and low-throughput modes (paper Figure 11) with the MLP
// controller.
func Fig11(o Options) ([]Fig11Point, error) {
	o = o.withDefaults()
	modes := []bool{true, false}
	lats := []uint64{0, 10, 20, 30, 40}
	workloads := fig11Workloads()
	// Two tasks per (mode, latency, workload) cell: baseline then MLP.
	per := 2 * len(workloads)
	results := make([]sim.Result, len(modes)*len(lats)*per)
	err := o.forEach(len(results), func(i int, o Options) {
		cell := i / per
		highTP, lat := modes[cell/len(lats)], lats[cell%len(lats)]
		w := workloads[(i%per)/2]
		simCfg := sim.DefaultConfig()
		simCfg.PrefetchLatency = lat
		simCfg.LowThroughput = !highTP
		var src sim.Source
		if i%2 == 1 {
			src = core.NewController(o.controllerConfig(), FourPrefetchers())
		}
		results[i] = o.run(simCfg, o.traceFor(w), src)
	})
	if err != nil {
		return nil, err
	}

	o.printf("== Fig 11: performance vs prefetch latency ==\n")
	o.printf("%-8s %-8s %8s %8s %8s\n", "latency", "TP", "acc", "cov", "dIPC")
	var out []Fig11Point
	for mi, highTP := range modes {
		for li, lat := range lats {
			var accs, covs, gains []float64
			cell := mi*len(lats) + li
			for wi := range workloads {
				base := results[cell*per+2*wi]
				r := results[cell*per+2*wi+1]
				accs = append(accs, r.Accuracy)
				covs = append(covs, r.Coverage)
				gains = append(gains, r.IPCImprovement(base))
			}
			p := Fig11Point{
				Latency:        lat,
				HighThroughput: highTP,
				AvgAccuracy:    metrics.Mean(accs),
				AvgCoverage:    metrics.Mean(covs),
				AvgIPCGain:     metrics.Mean(gains),
			}
			out = append(out, p)
			tp := "high"
			if !highTP {
				tp = "low"
			}
			o.printf("%-8d %-8s %7.1f%% %7.1f%% %+7.1f%%\n",
				p.Latency, tp, 100*p.AvgAccuracy, 100*p.AvgCoverage, 100*p.AvgIPCGain)
		}
	}
	return out, nil
}
