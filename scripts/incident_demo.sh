#!/bin/sh
# incident_demo.sh — end-to-end incident flight-recorder demo. Runs the
# cluster chaos harness with artifact capture and fails unless the
# kill/failover phase emitted a fleet incident bundle with a failover
# trigger and a stitched cross-process Chrome trace that validates, and
# the wedge phase emitted its manual-capture counterparts (DESIGN.md
# §15). Usage: scripts/incident_demo.sh [artifacts-dir] (a scratch dir
# is used and cleaned up when none is given), or `make incident-demo`.
set -eu

cd "$(dirname "$0")/.."

dir=${1:-}
if [ -z "$dir" ]; then
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' EXIT
fi

go run -race ./cmd/resemblefront -soak -soak.duration 5s -soak.accesses 2000 \
    -soak.artifacts "$dir"

for f in incident-kill.json stitched-kill.json incident-wedge.json stitched-wedge.json; do
    if ! test -s "$dir/$f"; then
        echo "incident-demo: missing artifact $f" >&2
        exit 1
    fi
done
if ! grep -q '"trigger": "failover"' "$dir/incident-kill.json"; then
    echo "incident-demo: kill-phase bundle carries no failover trigger" >&2
    exit 1
fi
go run ./cmd/bench -validate-chrome "$dir/stitched-kill.json"
go run ./cmd/bench -validate-chrome "$dir/stitched-wedge.json"
echo "incident-demo: OK (artifacts in $dir)"
