#!/bin/sh
# check.sh — the repo's CI gate. Runs formatting, vet, the race-enabled
# test subset for the concurrency-sensitive packages, and the full test
# suite. Usage: scripts/check.sh (or `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== zero-alloc hot-path guards (race-enabled quick gate) =="
# The allocation-free serving/step contract (DESIGN.md §13): steady-state
# simulator stepping and fixed-point forward must not allocate, and
# Requantize must refresh parameters in place.
go test -race -count 1 -run 'TestStepSteadyStateZeroAlloc' ./internal/sim/
go test -race -count 1 -run 'TestFixedForwardIntoZeroAlloc|TestRequantizeTracksRetrainedWeights' ./internal/nn/

echo "== go test -race (telemetry, sim) =="
go test -race ./internal/telemetry/... ./internal/sim/...

echo "== flight recorder + metrics history + trace stitching (race-enabled quick gate) =="
# The incident/tracing layer (DESIGN.md §15): concurrent ring writes,
# history sampling, cross-process span stitching, and the jobs=1 vs
# jobs=N stitched span-tree equality contract.
go test -race -count 1 -run 'FlightRecorder|MetricsHistory|AnchorSpans|AdoptSpans|SpanRefHeader' ./internal/telemetry/
go test -race -count 1 -run 'Stitched|Incident|FleetBundle|HedgeOutcome|MetricsHistory' ./internal/cluster/
go test -race -count 1 -run 'Incident|MetricsHistory|InboundTraceContext' ./internal/service/

echo "== go test -race (parallel engine, trace cache) =="
go test -race -short ./internal/experiments/... ./internal/trace/...

echo "== go test -race (resilience, service, cluster, artifact store) =="
go test -race ./internal/resilience/... ./internal/service/... ./internal/cluster/... ./internal/cas/...

echo "== durable artifact store crash-safety gates (DESIGN.md §14) =="
# SIGKILL mid-write must leave the store recoverable (torn temps
# quarantined, committed blobs intact), and the index parser must never
# panic or accept a corrupt index: a short live fuzz on top of the
# committed FuzzCASIndex corpus.
go test -race -count 1 -run 'TestSIGKILLMidWriteRecovery' ./internal/cas/
go test -run xxx -fuzz 'FuzzCASIndex' -fuzztime 10s ./internal/cas/

echo "== go test -race (fault tolerance) =="
go test -race -run 'Fault|Masking|Resume|Checkpoint' \
    ./internal/checkpoint/... ./internal/faults/... ./internal/experiments/...

echo "== pooled-path benchmark smoke =="
go test -run xxx -bench BenchmarkMatrixPool -benchtime 1x ./internal/experiments/

echo "== go test (fuzz corpus) =="
go test -run Fuzz ./...

echo "== disabled-telemetry overhead budget (counters, trace, spans, explain, alloc attribution) =="
go test -run DisabledHotPath -count 1 ./internal/telemetry/

echo "== profiling round-trip (real allocs profile through pprofparse) =="
go test -run TestAllocsProfileRoundTrip -count 1 ./internal/pprofparse/

echo "== bench profiling smoke (capture + decode + top tables) =="
go run ./cmd/bench -profile -quick >/dev/null

echo "== soak smoke (resembled chaos/soak harness, chrome trace) =="
tracetmp=$(mktemp -d)
trap 'rm -rf "$tracetmp"' EXIT
go run ./cmd/resembled -soak -trace-chrome "$tracetmp/soak-trace.json"

echo "== cluster soak smoke + incident demo (resemblefront chaos harness, race-enabled) =="
# Includes the kill-mid-run → resume-on-next-backend phase (byte-identity
# against a single instance) and the store-corruption arm audit. The
# incident_demo wrapper additionally fails unless the kill phase emitted
# a failover fleet bundle and a valid stitched cross-process Chrome
# trace (DESIGN.md §15).
sh scripts/incident_demo.sh "$tracetmp/incidents"

echo "== chrome trace validity (parses, ts monotone per track) =="
go run ./cmd/resemble -workload 433.milc -controller resemble-t -n 4000 \
    -trace-chrome "$tracetmp/run-trace.json" -explain "$tracetmp/decisions.jsonl" >/dev/null
go run ./cmd/bench -validate-chrome "$tracetmp/run-trace.json"
go run ./cmd/bench -validate-chrome "$tracetmp/soak-trace.json"

echo "== bench regression gate =="
# Compares the two newest BENCH_*.json files; skips cleanly when the
# history has fewer than two entries.
go run ./cmd/bench -compare-only

echo "== go test ./... =="
go test ./...

echo "== OK =="
