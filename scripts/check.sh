#!/bin/sh
# check.sh — the repo's CI gate. Runs formatting, vet, the race-enabled
# test subset for the concurrency-sensitive packages, and the full test
# suite. Usage: scripts/check.sh (or `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race (telemetry, sim) =="
go test -race ./internal/telemetry/... ./internal/sim/...

echo "== go test -race (parallel engine, trace cache) =="
go test -race -short ./internal/experiments/... ./internal/trace/...

echo "== go test -race (resilience, service) =="
go test -race ./internal/resilience/... ./internal/service/...

echo "== go test -race (fault tolerance) =="
go test -race -run 'Fault|Masking|Resume|Checkpoint' \
    ./internal/checkpoint/... ./internal/faults/... ./internal/experiments/...

echo "== pooled-path benchmark smoke =="
go test -run xxx -bench BenchmarkMatrixPool -benchtime 1x ./internal/experiments/

echo "== go test (fuzz corpus) =="
go test -run Fuzz ./...

echo "== soak smoke (resembled chaos/soak harness) =="
go run ./cmd/resembled -soak

echo "== go test ./... =="
go test ./...

echo "== OK =="
